package core

import (
	"bytes"
	"fmt"
	"time"

	"cloudskulk/internal/mem"
	"cloudskulk/internal/qemu"
	"cloudskulk/internal/sim"
	"cloudskulk/internal/vnet"
)

// This file implements the malicious services the paper's §IV-B describes:
// passive (traffic sniffing, keystroke capture, VMI of the victim,
// parasite VMs) and active (dropping and tampering with the victim's
// traffic). All of them key off the RITM's position on the victim's
// network path and its control of the L1 hypervisor.

// AttachTap interposes a tap on the RITM's endpoint, seeing every packet
// forwarded through it — i.e. all victim traffic.
func (rk *Rootkit) AttachTap(t vnet.Tap) error {
	return rk.Host.Network().AddTap(rk.RITM.Endpoint(), t)
}

// DetachTaps removes all taps from the RITM.
func (rk *Rootkit) DetachTaps() {
	rk.Host.Network().ClearTaps(rk.RITM.Endpoint())
}

// Sniffer is the passive service: it records every packet crossing the
// RITM. Because the victim's writes traverse the rootkit before any
// network-layer encryption the RITM itself would apply downstream, the
// payloads here are the plaintext the paper's write-trap captures.
type Sniffer struct {
	packets []*vnet.Packet
}

var _ vnet.Tap = (*Sniffer)(nil)

// NewSniffer returns an empty sniffer.
func NewSniffer() *Sniffer { return &Sniffer{} }

// Handle implements vnet.Tap: record and pass.
func (s *Sniffer) Handle(pkt *vnet.Packet) vnet.Verdict {
	s.packets = append(s.packets, pkt.Clone())
	return vnet.VerdictPass
}

// Packets returns everything captured so far.
func (s *Sniffer) Packets() []*vnet.Packet {
	return append([]*vnet.Packet(nil), s.packets...)
}

// PayloadsTo returns captured payloads destined for the given final port —
// e.g. 22 for the keystroke log of an SSH session. Stream segments are
// unframed to their application bytes; stream control segments (SYN/FIN)
// are skipped.
func (s *Sniffer) PayloadsTo(port int) [][]byte {
	var out [][]byte
	for _, p := range s.packets {
		if p.To.Port != port {
			continue
		}
		if data, ok := vnet.StreamPayload(p); ok {
			out = append(out, append([]byte(nil), data...))
			continue
		}
		if _, isStream, _ := vnet.ClassifySegment(p); isStream {
			continue // stream control traffic
		}
		out = append(out, append([]byte(nil), p.Payload...))
	}
	return out
}

// FilterAction is what an active-service rule does to a matching packet.
type FilterAction int

// Active-service actions.
const (
	// ActionDrop discards the packet (dropped web requests, deleted
	// mail).
	ActionDrop FilterAction = iota + 1
	// ActionReplace rewrites matching payload bytes (tampered web
	// responses).
	ActionReplace
)

// FilterRule matches packets by destination port and payload substring.
type FilterRule struct {
	Port    int // 0 matches any port
	Match   []byte
	Action  FilterAction
	Replace []byte
}

// ActiveFilter is the active service: a rule-driven tamper/drop tap.
type ActiveFilter struct {
	rules    []FilterRule
	dropped  uint64
	modified uint64
}

var _ vnet.Tap = (*ActiveFilter)(nil)

// NewActiveFilter builds a filter with the given rules (evaluated in
// order; first match wins).
func NewActiveFilter(rules ...FilterRule) *ActiveFilter {
	return &ActiveFilter{rules: append([]FilterRule(nil), rules...)}
}

// AddRule appends a rule.
func (f *ActiveFilter) AddRule(r FilterRule) { f.rules = append(f.rules, r) }

// Handle implements vnet.Tap.
func (f *ActiveFilter) Handle(pkt *vnet.Packet) vnet.Verdict {
	for _, r := range f.rules {
		if r.Port != 0 && pkt.To.Port != r.Port {
			continue
		}
		if len(r.Match) > 0 && !bytes.Contains(pkt.Payload, r.Match) {
			continue
		}
		switch r.Action {
		case ActionDrop:
			f.dropped++
			return vnet.VerdictDrop
		case ActionReplace:
			pkt.Payload = bytes.ReplaceAll(pkt.Payload, r.Match, r.Replace)
			f.modified++
			return vnet.VerdictPass
		}
	}
	return vnet.VerdictPass
}

// Stats reports how many packets were dropped and modified.
func (f *ActiveFilter) Stats() (dropped, modified uint64) {
	return f.dropped, f.modified
}

// VMI is the attacker's introspection of the victim from the L1
// hypervisor: raw reads of the nested guest's physical memory. The paper
// notes that VMI — normally a defensive technique — becomes an attacker
// capability once the attacker owns the hypervisor.
type VMI struct {
	vm *qemu.VM
}

// VictimVMI returns an introspection handle over the captured victim.
func (rk *Rootkit) VictimVMI() VMI {
	return VMI{vm: rk.Victim}
}

// ReadPages dumps n pages of the victim's physical memory starting at page
// `from`.
func (v VMI) ReadPages(from, n int) ([]mem.Content, error) {
	out := make([]mem.Content, 0, n)
	for p := from; p < from+n; p++ {
		c, err := v.vm.RAM().Read(p)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// FindFile scans the victim's memory for a known file image and returns
// the page offset where it is resident.
func (v VMI) FindFile(f *mem.File) (int, bool) {
	if f.NumPages() == 0 {
		return 0, false
	}
	ram := v.vm.RAM()
	for p := 0; p <= ram.NumPages()-f.NumPages(); p++ {
		if ram.MustRead(p) != f.Pages[0] {
			continue
		}
		if ram.FileResident(f, p) == f.NumPages() {
			return p, true
		}
	}
	return 0, false
}

// OSFingerprint hashes the victim's kernel-image region, the quantity a
// VMI fingerprinting tool would compare.
func (v VMI) OSFingerprint() uint64 {
	return mem.Fingerprint(v.vm.RAM(), KernelPages)
}

// InterceptFilePushes returns a hook that mirrors every file pushed to the
// victim into the RITM's memory at mirrorAt — the "GuestX tries to include
// the same file as L2 does" impersonation the paper's §VI-D2 assumes. The
// RITM sits on the victim's ingress path, so it sees pushed content; it
// cannot see changes the user later makes *inside* the guest, which is the
// asymmetry the dedup detector exploits.
func (rk *Rootkit) InterceptFilePushes(mirrorAt int) func(f *mem.File) {
	return func(f *mem.File) {
		// Best effort: an oversized push simply doesn't fit.
		_ = rk.MirrorFile(f, mirrorAt)
	}
}

// MirrorRange copies n pages of the victim's memory into the RITM at the
// same offsets — the attacker keeping GuestX's memory identical to the
// victim's for regions they know about (the stock image, the kernel).
func (rk *Rootkit) MirrorRange(from, n int) error {
	for p := from; p < from+n; p++ {
		c, err := rk.Victim.RAM().Read(p)
		if err != nil {
			return err
		}
		if _, err := rk.RITM.RAM().Write(p, c); err != nil {
			return err
		}
	}
	return nil
}

// MirrorSync is the paper's §VI-D countermeasure discussion made concrete:
// the attacker periodically polls a region of the victim's memory and
// propagates any change into the RITM's impersonating copy, hoping to keep
// t2 fast even after the guest edits its pages. Its cost is explicit:
// every poll reads the whole tracked region.
type MirrorSync struct {
	ticker       *sim.Ticker
	pagesScanned uint64
	pagesCopied  uint64
	interval     time.Duration
	regionPages  int
}

// StartMirrorSync begins polling victim pages [victimAt, victimAt+n),
// copying changed pages into the RITM at [ritmAt, ritmAt+n), every
// interval. Stop it when done.
func (rk *Rootkit) StartMirrorSync(victimAt, n, ritmAt int, interval time.Duration) *MirrorSync {
	ms := &MirrorSync{interval: interval, regionPages: n}
	ms.ticker = sim.NewTicker(rk.Host.Engine(), interval, "cloudskulk.mirrorsync", func() {
		for i := 0; i < n; i++ {
			vc, err := rk.Victim.RAM().Read(victimAt + i)
			if err != nil {
				return
			}
			ms.pagesScanned++
			rc, err := rk.RITM.RAM().Read(ritmAt + i)
			if err != nil {
				return
			}
			if vc != rc {
				if _, err := rk.RITM.RAM().Write(ritmAt+i, vc); err != nil {
					return
				}
				ms.pagesCopied++
			}
		}
	})
	return ms
}

// Stop halts the synchronizer.
func (ms *MirrorSync) Stop() { ms.ticker.Stop() }

// Overhead reports the countermeasure's cost: pages scanned and copied so
// far, and the steady-state scan rate in pages per second.
func (ms *MirrorSync) Overhead() (scanned, copied uint64, pagesPerSec float64) {
	return ms.pagesScanned, ms.pagesCopied,
		float64(ms.regionPages) / ms.interval.Seconds()
}

// WriteTrackingSync is the strong form of the §VI-D countermeasure: the
// attacker write-protects a region of the victim's memory from the L1
// hypervisor and propagates every change into the RITM's impersonating
// copy the instant it happens. Evasion is perfect for the tracked region —
// at the price of one trap per guest write there, and of hypervisor
// modifications a code-integrity check would spot (Space.HasWriteHook).
type WriteTrackingSync struct {
	victim *qemu.VM
	traps  uint64
}

// StartWriteTrackingSync traps writes to victim pages
// [victimAt, victimAt+n) and mirrors them to RITM pages at the same
// relative offsets from ritmAt. n < 0 tracks the whole of guest RAM.
func (rk *Rootkit) StartWriteTrackingSync(victimAt, n, ritmAt int) *WriteTrackingSync {
	if n < 0 {
		victimAt, ritmAt = 0, 0
		n = rk.Victim.RAM().NumPages()
	}
	ws := &WriteTrackingSync{victim: rk.Victim}
	rk.Victim.RAM().SetWriteHook(func(page int, c mem.Content) {
		if page < victimAt || page >= victimAt+n {
			return
		}
		ws.traps++
		_, _ = rk.RITM.RAM().Write(ritmAt+(page-victimAt), c)
	})
	return ws
}

// Stop removes the write trap.
func (ws *WriteTrackingSync) Stop() {
	ws.victim.RAM().SetWriteHook(nil)
}

// Traps returns how many guest writes the countermeasure intercepted.
func (ws *WriteTrackingSync) Traps() uint64 { return ws.traps }

// TrapOverhead estimates the guest slowdown the countermeasure inflicts:
// every trapped write costs roughly one nested fault.
func (ws *WriteTrackingSync) TrapOverhead(perTrap time.Duration) time.Duration {
	return time.Duration(ws.traps) * perTrap
}

// LaunchParasite starts an additional, attacker-owned OS beside the victim
// on the inner hypervisor — the paper's phishing/spam/DDoS-zombie hosting
// service. The parasite must fit the RITM's remaining memory.
func (rk *Rootkit) LaunchParasite(name string, memoryMB int64) (*qemu.VM, error) {
	cfg := qemu.DefaultConfig(name)
	cfg.MemoryMB = memoryMB
	vm, err := rk.InnerHV.CreateVM(cfg)
	if err != nil {
		return nil, fmt.Errorf("cloudskulk: parasite: %w", err)
	}
	if err := rk.InnerHV.Launch(name); err != nil {
		return nil, fmt.Errorf("cloudskulk: parasite launch: %w", err)
	}
	return vm, nil
}
