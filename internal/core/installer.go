package core

import (
	"errors"
	"fmt"
	"time"

	"cloudskulk/internal/kvm"
	"cloudskulk/internal/mem"
	"cloudskulk/internal/migrate"
	"cloudskulk/internal/qemu"
)

// Installer errors.
var (
	ErrTargetVanished = errors.New("cloudskulk: target vm disappeared during install")
	ErrNotInstalled   = errors.New("cloudskulk: rootkit not installed")
)

// KernelPages is the size of the guest kernel-image region at the bottom
// of RAM used for fingerprinting and impersonation.
const KernelPages = 256

// InstallConfig parameterizes the attack.
type InstallConfig struct {
	// TargetName pins the victim VM; empty means "first QEMU process
	// recon finds".
	TargetName string
	// RITMName names the rootkit-in-the-middle VM (paper: GuestX).
	RITMName string
	// HostPort is the migration port the source connects to on the host
	// (paper: HOST PORT AAAA).
	HostPort int
	// RITMPort is the port inside the RITM the nested VM listens on
	// (paper: ROOTKIT PORT BBBB).
	RITMPort int
	// RITMMemoryMultiple sizes the RITM relative to the target (it must
	// hold the nested VM plus its own OS).
	RITMMemoryMultiple int64
	// KeepPID re-labels the RITM process with the victim's original PID
	// after the source is killed.
	KeepPID bool
	// SpoofCommandLine rewrites the RITM's process command line to the
	// victim's, so `ps -ef` shows no change.
	SpoofCommandLine bool
	// ScrubHistory removes the attacker's own launch commands from the
	// host's shell history (wiping everything would be suspicious;
	// selective removal is not).
	ScrubHistory bool
	// Impersonate copies the victim's kernel-image region into the RITM
	// so VMI fingerprinting of "the guest" still matches.
	Impersonate bool
	// HideVMCS runs the nested hypervisor with a software MMU so no
	// VMCS signature lands in RITM memory — the evasion against
	// memory-forensic scanners (at a performance price not modelled on
	// top of the normal nesting costs).
	HideVMCS bool
}

// DefaultInstallConfig returns the paper's setup.
func DefaultInstallConfig() InstallConfig {
	return InstallConfig{
		RITMName:           "guestX",
		HostPort:           4444,
		RITMPort:           4444,
		RITMMemoryMultiple: 2,
		KeepPID:            true,
		SpoofCommandLine:   true,
		ScrubHistory:       true,
		Impersonate:        true,
	}
}

// StepTiming records one install step's virtual-time cost.
type StepTiming struct {
	Name string
	Took time.Duration
}

// Report is the outcome of an installation.
type Report struct {
	TargetName   string
	TargetConfig qemu.Config
	ReconMethod  ReconMethod
	Migration    migrate.Result
	Steps        []StepTiming
	TotalTime    time.Duration
	PIDPreserved bool
	OriginalPID  int
}

// Rootkit is an installed CloudSkulk instance: handles to the RITM VM, the
// nested hypervisor inside it, and the victim now running as a nested
// guest.
type Rootkit struct {
	Host    *kvm.Host
	RITM    *qemu.VM
	InnerHV *kvm.Hypervisor
	Victim  *qemu.VM
	Report  *Report
}

// Installer executes the four-step CloudSkulk installation.
type Installer struct {
	Host      *kvm.Host
	Migration *migrate.Engine
}

// Install runs the attack end to end and returns the installed rootkit.
// The threat model's step 0 — having root on the host — is embodied by
// holding a *kvm.Host at all.
func (in Installer) Install(cfg InstallConfig) (*Rootkit, error) {
	if cfg.RITMName == "" {
		cfg.RITMName = "guestX"
	}
	if cfg.HostPort == 0 {
		cfg.HostPort = 4444
	}
	if cfg.RITMPort == 0 {
		cfg.RITMPort = cfg.HostPort
	}
	if cfg.RITMMemoryMultiple < 2 {
		cfg.RITMMemoryMultiple = 2
	}

	eng := in.Host.Engine()
	hv := in.Host.Hypervisor()
	report := &Report{}
	start := eng.Now()
	step := func(name string, from time.Duration) time.Duration {
		now := eng.Now()
		report.Steps = append(report.Steps, StepTiming{Name: name, Took: now - from})
		return now
	}

	// Step 1: recon — find the target and its exact QEMU configuration.
	mark := eng.Now()
	targetCfg, method, err := in.findTarget(cfg)
	if err != nil {
		return nil, err
	}
	targetVM, ok := hv.VM(targetCfg.Name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrTargetVanished, targetCfg.Name)
	}
	// Command-line recon misses runtime state (hostfwd_add rules never
	// appear in ps). When the target exposes a monitor, refine the
	// network picture through `info network`.
	if targetCfg.MonitorPort != 0 {
		if mcfg, merr := (Recon{Host: in.Host}).ConfigViaMonitor(targetCfg.MonitorPort); merr == nil {
			targetCfg.NetDevs = mcfg.NetDevs
		}
	}
	report.TargetName = targetCfg.Name
	report.TargetConfig = targetCfg
	report.ReconMethod = method
	report.OriginalPID = targetVM.PID()
	mark = step("recon", mark)

	// Step 2: launch GuestX — the RITM — sized to host the victim, with
	// the migration forward HOST:AAAA -> RITM:BBBB.
	ritmCfg := qemu.DefaultConfig(cfg.RITMName)
	ritmCfg.Machine = targetCfg.Machine
	ritmCfg.MemoryMB = targetCfg.MemoryMB * cfg.RITMMemoryMultiple
	ritmCfg.CPUs = targetCfg.CPUs
	ritmCfg.EnableKVM = true
	ritmCfg.NetDevs[0].HostFwds = []qemu.FwdRule{{HostPort: cfg.HostPort, GuestPort: cfg.RITMPort}}
	ritm, err := hv.CreateVM(ritmCfg)
	if err != nil {
		return nil, fmt.Errorf("cloudskulk: create ritm: %w", err)
	}
	if err := hv.Launch(cfg.RITMName); err != nil {
		return nil, fmt.Errorf("cloudskulk: launch ritm: %w", err)
	}
	inner, err := hv.EnableNesting(cfg.RITMName)
	if err != nil {
		return nil, fmt.Errorf("cloudskulk: nest: %w", err)
	}
	inner.SoftwareMMU = cfg.HideVMCS
	mark = step("launch ritm", mark)

	// Step 3: create the nested destination VM inside GuestX — an exact
	// configuration twin of the victim, paused in incoming state. It
	// even takes the victim's name: the inner hypervisor is attacker
	// territory, nothing collides.
	nestedCfg := targetCfg.Clone()
	nestedCfg.Incoming = fmt.Sprintf("tcp:0.0.0.0:%d", cfg.RITMPort)
	nested, err := inner.CreateVM(nestedCfg)
	if err != nil {
		return nil, fmt.Errorf("cloudskulk: create nested: %w", err)
	}
	if err := inner.Launch(nestedCfg.Name); err != nil {
		return nil, fmt.Errorf("cloudskulk: launch nested: %w", err)
	}
	mark = step("launch nested destination", mark)

	// Step 4: drive the victim's own monitor to live-migrate it into the
	// nested VM.
	migCmd := fmt.Sprintf("migrate -d tcp:127.0.0.1:%d", cfg.HostPort)
	if _, err := targetVM.Monitor().Execute(migCmd); err != nil {
		return nil, fmt.Errorf("cloudskulk: migrate: %w", err)
	}
	res, ok := in.Migration.LastResult()
	if !ok {
		return nil, errors.New("cloudskulk: migration produced no result")
	}
	report.Migration = res
	mark = step("live migration", mark)

	// Clean-up: kill the drained source, take over its ports, PID, and
	// command line.
	originalFwds := fwdsOf(targetCfg)
	if err := hv.Kill(targetCfg.Name); err != nil {
		return nil, fmt.Errorf("cloudskulk: kill source: %w", err)
	}
	for _, rule := range originalFwds {
		takeover := qemu.FwdRule{HostPort: rule.HostPort, GuestPort: rule.HostPort}
		if err := ritm.AddHostFwd(takeover); err != nil {
			return nil, fmt.Errorf("cloudskulk: port takeover %d: %w", rule.HostPort, err)
		}
	}
	if cfg.KeepPID {
		if err := in.Host.OS().SwapPID(ritm.PID(), report.OriginalPID); err == nil {
			ritm.SetPID(report.OriginalPID)
			report.PIDPreserved = true
		}
	}
	if cfg.SpoofCommandLine {
		if proc, ok := in.Host.OS().Process(ritm.PID()); ok {
			proc.Command = targetCfg.CommandLine()
		}
	}
	if cfg.ScrubHistory {
		in.Host.OS().RemoveHistoryMatching("-name " + cfg.RITMName)
	}

	rk := &Rootkit{
		Host:    in.Host,
		RITM:    ritm,
		InnerHV: inner,
		Victim:  nested,
		Report:  report,
	}
	if cfg.Impersonate {
		if err := rk.MirrorKernel(); err != nil {
			return nil, fmt.Errorf("cloudskulk: impersonate: %w", err)
		}
	}
	step("cleanup & takeover", mark)
	report.TotalTime = eng.Now() - start
	return rk, nil
}

func (in Installer) findTarget(cfg InstallConfig) (qemu.Config, ReconMethod, error) {
	r := Recon{Host: in.Host}
	if cfg.TargetName == "" {
		return r.FindTarget(cfg.RITMName)
	}
	// Pinned target: still go through recon surfaces, but filter.
	for _, proc := range in.Host.OS().FindByCommand("-name " + cfg.TargetName) {
		parsed, err := qemu.ParseCommandLine(proc.Command)
		if err == nil && parsed.Name == cfg.TargetName {
			return parsed, ReconPS, nil
		}
	}
	for _, line := range in.Host.OS().HistoryMatching("-name " + cfg.TargetName) {
		parsed, err := qemu.ParseCommandLine(line)
		if err == nil && parsed.Name == cfg.TargetName {
			return parsed, ReconHistory, nil
		}
	}
	return qemu.Config{}, "", fmt.Errorf("%w: %q", ErrNoTarget, cfg.TargetName)
}

func fwdsOf(cfg qemu.Config) []qemu.FwdRule {
	var out []qemu.FwdRule
	for _, nd := range cfg.NetDevs {
		out = append(out, nd.HostFwds...)
	}
	return out
}

// MirrorKernel copies the victim's kernel-image region into the RITM's own
// RAM at the same offsets, so an OS fingerprint of "the guest the admin
// sees" matches the victim's.
func (rk *Rootkit) MirrorKernel() error {
	n := KernelPages
	if rk.Victim.RAM().NumPages() < n {
		n = rk.Victim.RAM().NumPages()
	}
	if rk.RITM.RAM().NumPages() < n {
		n = rk.RITM.RAM().NumPages()
	}
	for p := 0; p < n; p++ {
		c, err := rk.Victim.RAM().Read(p)
		if err != nil {
			return err
		}
		if _, err := rk.RITM.RAM().Write(p, c); err != nil {
			return err
		}
	}
	return nil
}

// MirrorFile loads a file image into the RITM's memory — the attacker
// keeping GuestX's memory contents plausible (same OS files as the
// victim), which is exactly the assumption the dedup detector exploits.
func (rk *Rootkit) MirrorFile(f *mem.File, atPage int) error {
	return rk.RITM.RAM().LoadFile(f, atPage)
}
