// Package core implements the paper's primary contribution: the CloudSkulk
// nested-VM rootkit. It provides the attacker's recon over the host's
// process table, shell history, and the QEMU monitor; the four-step
// installer (launch the rootkit-in-the-middle VM, nest a destination VM,
// live-migrate the victim into it, clean up and take the victim's
// identity); and the malicious services the paper describes (passive
// sniffing/VMI, active packet tampering, parasite VMs).
package core

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"

	"cloudskulk/internal/kvm"
	"cloudskulk/internal/qemu"
)

// Errors callers match on.
var (
	ErrNoTarget    = errors.New("cloudskulk: no target VM found")
	ErrReconFailed = errors.New("cloudskulk: recon failed")
)

// ReconMethod records which recon surface produced the target config.
type ReconMethod string

// Recon surfaces, in the order the paper suggests trying them.
const (
	ReconPS      ReconMethod = "ps -ef"
	ReconHistory ReconMethod = "shell history"
	ReconMonitor ReconMethod = "qemu monitor"
)

// Recon discovers target VM configurations the way a root-privileged
// attacker does: no simulator ground truth, only the surfaces a real host
// exposes.
type Recon struct {
	Host *kvm.Host
}

// FindTarget locates a victim QEMU process and reconstructs its launch
// configuration. VMs whose names appear in exclude (e.g. the attacker's
// own) are skipped. It tries `ps -ef` first, then shell history, then —
// if a monitor port was learned from either — verifies via the monitor.
func (r Recon) FindTarget(exclude ...string) (qemu.Config, ReconMethod, error) {
	skip := make(map[string]bool, len(exclude))
	for _, n := range exclude {
		skip[n] = true
	}

	// Surface 1: the process table.
	for _, proc := range r.Host.OS().FindByCommand("qemu-system") {
		cfg, err := qemu.ParseCommandLine(proc.Command)
		if err != nil || skip[cfg.Name] || cfg.Incoming != "" {
			continue
		}
		return cfg, ReconPS, nil
	}

	// Surface 2: shell history (the process table may hide command
	// lines via hidepid or prctl).
	for _, line := range r.Host.OS().HistoryMatching("qemu-system") {
		cfg, err := qemu.ParseCommandLine(line)
		if err != nil || skip[cfg.Name] || cfg.Incoming != "" {
			continue
		}
		return cfg, ReconHistory, nil
	}

	return qemu.Config{}, "", ErrNoTarget
}

// ConfigViaMonitor reconstructs a VM's configuration purely from its QEMU
// monitor on the given host telnet port — the fallback the paper describes
// when ps/history are unavailable. It drives a real monitor session
// (`info name`, `info mtree`, `info qtree`, `info network`).
func (r Recon) ConfigViaMonitor(port int) (qemu.Config, error) {
	conn, err := r.Host.OpenMonitor(port)
	if err != nil {
		return qemu.Config{}, fmt.Errorf("%w: %w", ErrReconFailed, err)
	}
	defer func() { _ = conn.Close() }()
	mc := newMonitorClient(conn)
	defer mc.close()
	if _, err := mc.waitPrompt(); err != nil {
		return qemu.Config{}, fmt.Errorf("%w: greeting: %w", ErrReconFailed, err)
	}

	var cfg qemu.Config
	cfg.Machine = "pc-i440fx-2.9" // not introspectable over HMP; the era's default
	cfg.EnableKVM = true
	cfg.CPUs = 1
	cfg.MonitorPort = port

	name, err := mc.command("info name")
	if err != nil {
		return qemu.Config{}, err
	}
	cfg.Name = strings.TrimSpace(name)

	mtree, err := mc.command("info mtree")
	if err != nil {
		return qemu.Config{}, err
	}
	memMB, err := parseMtreeRAMMB(mtree)
	if err != nil {
		return qemu.Config{}, err
	}
	cfg.MemoryMB = memMB

	qtree, err := mc.command("info qtree")
	if err != nil {
		return qemu.Config{}, err
	}
	cfg.Drives = parseQtreeDrives(qtree)

	network, err := mc.command("info network")
	if err != nil {
		return qemu.Config{}, err
	}
	cfg.NetDevs = parseNetworkDevs(network)
	return cfg, nil
}

// ConfigViaQMP reconstructs a partial VM configuration from the JSON
// machine protocol on the given host port — the recon path a management-
// stack credential gives the attacker. QMP exposes name, memory, and block
// devices; network forwards still require `info network` or the command
// line, so the returned config carries a default NIC.
func (r Recon) ConfigViaQMP(port int) (qemu.Config, error) {
	conn, err := r.Host.OpenQMP(port)
	if err != nil {
		return qemu.Config{}, fmt.Errorf("%w: %w", ErrReconFailed, err)
	}
	defer func() { _ = conn.Close() }()

	dec := json.NewDecoder(conn)
	var greeting qemu.QMPGreeting
	if err := dec.Decode(&greeting); err != nil {
		return qemu.Config{}, fmt.Errorf("%w: greeting: %w", ErrReconFailed, err)
	}
	call := func(execute, args string) (json.RawMessage, error) {
		cmd := qemu.QMPCommand{Execute: execute}
		if args != "" {
			cmd.Arguments = json.RawMessage(args)
		}
		raw, err := json.Marshal(cmd)
		if err != nil {
			return nil, err
		}
		if _, err := conn.Write(append(raw, '\n')); err != nil {
			return nil, fmt.Errorf("%w: send %s: %w", ErrReconFailed, execute, err)
		}
		var resp qemu.QMPResponse
		if err := dec.Decode(&resp); err != nil {
			return nil, fmt.Errorf("%w: read %s: %w", ErrReconFailed, execute, err)
		}
		if resp.Error != nil {
			return nil, fmt.Errorf("%w: %s: %s", ErrReconFailed, execute, resp.Error.Desc)
		}
		return resp.Return, nil
	}

	if _, err := call("qmp_capabilities", ""); err != nil {
		return qemu.Config{}, err
	}
	cfg := qemu.Config{
		Machine:   "pc-i440fx-2.9",
		EnableKVM: true,
		CPUs:      1,
		QMPPort:   port,
		NetDevs:   []qemu.NetDev{{Model: "virtio-net-pci"}},
	}

	raw, err := call("query-name", "")
	if err != nil {
		return qemu.Config{}, err
	}
	var name struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(raw, &name); err != nil {
		return qemu.Config{}, fmt.Errorf("%w: %w", ErrReconFailed, err)
	}
	cfg.Name = name.Name

	raw, err = call("query-memory-size-summary", "")
	if err != nil {
		return qemu.Config{}, err
	}
	var memory struct {
		Base int64 `json:"base-memory"`
	}
	if err := json.Unmarshal(raw, &memory); err != nil {
		return qemu.Config{}, fmt.Errorf("%w: %w", ErrReconFailed, err)
	}
	cfg.MemoryMB = memory.Base >> 20

	raw, err = call("query-block", "")
	if err != nil {
		return qemu.Config{}, err
	}
	var blocks []struct {
		File   string `json:"file"`
		Driver string `json:"driver"`
		SizeMB int64  `json:"size_mb"`
	}
	if err := json.Unmarshal(raw, &blocks); err != nil {
		return qemu.Config{}, fmt.Errorf("%w: %w", ErrReconFailed, err)
	}
	for _, b := range blocks {
		cfg.Drives = append(cfg.Drives, qemu.Drive{
			File:   b.File,
			Format: b.Driver,
			SizeMB: b.SizeMB,
		})
	}
	return cfg, nil
}

// monitorClient drives an HMP session over a conn, prompt-synchronized.
type monitorClient struct {
	conn net.Conn
	r    *bufio.Reader
}

func newMonitorClient(conn net.Conn) *monitorClient {
	return &monitorClient{conn: conn, r: bufio.NewReader(conn)}
}

const _prompt = "(qemu) "

// waitPrompt consumes output until the next prompt, returning what came
// before it.
func (m *monitorClient) waitPrompt() (string, error) {
	var b strings.Builder
	buf := make([]byte, 1)
	for !strings.HasSuffix(b.String(), _prompt) {
		if _, err := m.r.Read(buf); err != nil {
			return b.String(), err
		}
		b.Write(buf)
	}
	out := b.String()
	return strings.TrimSuffix(out, _prompt), nil
}

// command sends one line and returns its output.
func (m *monitorClient) command(line string) (string, error) {
	if _, err := fmt.Fprintf(m.conn, "%s\n", line); err != nil {
		return "", fmt.Errorf("%w: send %q: %w", ErrReconFailed, line, err)
	}
	out, err := m.waitPrompt()
	if err != nil {
		return "", fmt.Errorf("%w: read %q: %w", ErrReconFailed, line, err)
	}
	return out, nil
}

// quit ends the session without killing the VM (just closes the conn).
func (m *monitorClient) close() { _ = m.conn.Close() }

// parseMtreeRAMMB extracts the RAM size from `info mtree` output: the
// pc.ram region's end address + 1.
func parseMtreeRAMMB(out string) (int64, error) {
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "pc.ram") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		span := fields[0] // 0000000000000000-000000003fffffff
		_, endHex, ok := strings.Cut(span, "-")
		if !ok {
			continue
		}
		end, err := strconv.ParseInt(endHex, 16, 64)
		if err != nil {
			continue
		}
		return (end + 1) >> 20, nil
	}
	return 0, fmt.Errorf("%w: no pc.ram in mtree", ErrReconFailed)
}

// parseQtreeDrives extracts block devices from `info qtree` output.
func parseQtreeDrives(out string) []qemu.Drive {
	var drives []qemu.Drive
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "drive = ") {
			continue
		}
		file := strings.Trim(strings.TrimPrefix(line, "drive = "), `"`)
		format := "raw"
		if strings.HasSuffix(file, ".qcow2") {
			format = "qcow2"
		}
		drives = append(drives, qemu.Drive{File: file, Format: format, SizeMB: 20 * 1024})
	}
	return drives
}

// parseNetworkDevs extracts NICs and host forwards from `info network`.
func parseNetworkDevs(out string) []qemu.NetDev {
	var devs []qemu.NetDev
	for _, line := range strings.Split(out, "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.Contains(trimmed, "model="):
			_, model, _ := strings.Cut(trimmed, "model=")
			devs = append(devs, qemu.NetDev{Model: strings.TrimSpace(model)})
		case strings.HasPrefix(trimmed, "hostfwd: ") && len(devs) > 0:
			// hostfwd: tcp::2222 -> :22
			rest := strings.TrimPrefix(trimmed, "hostfwd: tcp::")
			hostStr, guestStr, ok := strings.Cut(rest, " -> :")
			if !ok {
				continue
			}
			hp, err1 := strconv.Atoi(strings.TrimSpace(hostStr))
			gp, err2 := strconv.Atoi(strings.TrimSpace(guestStr))
			if err1 != nil || err2 != nil {
				continue
			}
			last := &devs[len(devs)-1]
			last.HostFwds = append(last.HostFwds, qemu.FwdRule{HostPort: hp, GuestPort: gp})
		}
	}
	return devs
}
