package core

import (
	"errors"
	"strings"
	"testing"

	"cloudskulk/internal/qemu"
)

func TestConfigViaQMP(t *testing.T) {
	tc := newTestCloud(t, 1)
	// Give the victim a QMP socket too (management-stack style).
	cfg := qemu.DefaultConfig("mgmt")
	cfg.MemoryMB = 48
	cfg.QMPPort = 7777
	if _, err := tc.host.Hypervisor().CreateVM(cfg); err != nil {
		t.Fatal(err)
	}
	if err := tc.host.Hypervisor().Launch("mgmt"); err != nil {
		t.Fatal(err)
	}
	got, err := Recon{Host: tc.host}.ConfigViaQMP(7777)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "mgmt" || got.MemoryMB != 48 {
		t.Fatalf("config = %+v", got)
	}
	if len(got.Drives) != 1 || got.Drives[0].File != "mgmt.qcow2" || got.Drives[0].Format != "qcow2" {
		t.Fatalf("drives = %+v", got.Drives)
	}
	// A QMP-derived config is a valid migration twin of the original.
	orig, _ := tc.host.Hypervisor().VM("mgmt")
	if err := orig.Config().MatchesForMigration(got); err != nil {
		t.Fatalf("qmp recon not migration-compatible: %v", err)
	}
	if _, err := (Recon{Host: tc.host}).ConfigViaQMP(9999); !errors.Is(err, ErrReconFailed) {
		t.Fatalf("bogus port err = %v", err)
	}
}

func TestQMPPortCommandLineRoundTrip(t *testing.T) {
	cfg := qemu.DefaultConfig("g")
	cfg.QMPPort = 7777
	line := cfg.CommandLine()
	if !strings.Contains(line, "-qmp tcp:127.0.0.1:7777,server,nowait") {
		t.Fatalf("command line missing qmp: %s", line)
	}
	parsed, err := qemu.ParseCommandLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.QMPPort != 7777 {
		t.Fatalf("parsed qmp port = %d", parsed.QMPPort)
	}
}
