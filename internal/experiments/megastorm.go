package experiments

import (
	"fmt"
	"time"

	"cloudskulk/internal/mem"
	"cloudskulk/internal/report"
	"cloudskulk/internal/shard"
	"cloudskulk/internal/vnet"
)

// MegaStormConfig sizes the sharded-cloud scale experiment: a grid of
// per-shard fleets joined by conservative synchronization, every guest a
// copy-on-write fork of a golden image, with a churn phase of guest
// write bursts, kernel tampering, and cross-shard delta migrations,
// closed by a full-fleet kernel integrity audit.
type MegaStormConfig struct {
	Shards        int
	HostsPerShard int
	GuestsPerHost int
	GuestMemMB    int64
	// MigrationsPerShard guests leave each shard for its ring neighbour
	// during churn (guests 0..M-1, each after a user-page write burst).
	MigrationsPerShard int
	// TampersPerShard guests get one kernel page flipped. Guest 0 — a
	// migrant — is always among them, so the audit must catch tampering
	// that crossed a shard boundary inside a migration delta.
	TampersPerShard int
	// BurstPages is the user-region write burst size per migrating guest.
	BurstPages int
}

// DefaultMegaStormConfig is the headline scale the sharding exists for:
// 64 shards × 16 hosts × 100 guests = 1,024 hosts carrying 102,400
// guests, all forked from 128 MB golden images (3.2 billion pages of
// logical guest memory), with 1,024 cross-shard migrations and 256
// tampered kernels to find.
func DefaultMegaStormConfig() MegaStormConfig {
	return MegaStormConfig{
		Shards:             64,
		HostsPerShard:      16,
		GuestsPerHost:      100,
		GuestMemMB:         128,
		MigrationsPerShard: 16,
		TampersPerShard:    4,
		BurstPages:         16,
	}
}

// QuickMegaStormConfig is a sub-second configuration for smoke tests and
// CI: 4 shards × 4 hosts × 8 guests.
func QuickMegaStormConfig() MegaStormConfig {
	return MegaStormConfig{
		Shards:             4,
		HostsPerShard:      4,
		GuestsPerHost:      8,
		GuestMemMB:         8,
		MigrationsPerShard: 2,
		TampersPerShard:    2,
		BurstPages:         8,
	}
}

// megastormInterShard is the link between shards: a 10 GbE-class
// backbone whose 2 ms latency is the world's conservative lookahead.
var megastormInterShard = vnet.LinkSpec{
	Bandwidth: 1250 << 20,
	Latency:   2 * time.Millisecond,
}

// MegaStormResult is the scale run's deterministic ledger.
type MegaStormResult struct {
	Config MegaStormConfig

	Hosts      int
	Guests     int // population after churn (== deployed: migration conserves guests)
	Deployed   int
	ForkSpawns uint64 // template forks: every deploy plus every migration arrival

	Migrations int
	DeltaPages int // pages shipped across shards, total
	Rounds     uint64
	Delivered  uint64

	// GoldenImageHash is the per-shard golden template's content hash —
	// a pure function of the run seed, so the rendered artefact provably
	// depends on it even when every count above is scale-invariant.
	GoldenImageHash uint64

	Tampered      int // kernels the scenario corrupted
	Flagged       int // kernels the audit flagged
	MissedTampers int // tampered but not flagged (want 0)
	FalseFlags    int // flagged but not tampered (want 0)
	// MigrantFlags counts flagged guests found on a shard other than
	// their birth shard — tampering that travelled inside a delta.
	MigrantFlags int

	// ProvisionVirtSec / ChurnVirtSec are the virtual durations of the
	// two phases.
	ProvisionVirtSec float64
	ChurnVirtSec     float64
}

// Render formats the ledger as an ASCII table.
func (r *MegaStormResult) Render() string {
	c := r.Config
	t := report.Table{
		Title: fmt.Sprintf("Megastorm: %s guests on %s hosts (%d shards, %d MB golden forks)",
			report.Comma(int64(r.Deployed)), report.Comma(int64(r.Hosts)), c.Shards, c.GuestMemMB),
		Headers: []string{"metric", "value"},
	}
	t.AddRow("hosts", report.Comma(int64(r.Hosts)))
	t.AddRow("guests deployed", report.Comma(int64(r.Deployed)))
	t.AddRow("guests after churn", report.Comma(int64(r.Guests)))
	t.AddRow("template forks", report.Comma(int64(r.ForkSpawns)))
	t.AddRow("golden image hash", fmt.Sprintf("%016x", r.GoldenImageHash))
	t.AddRow("cross-shard migrations", report.Comma(int64(r.Migrations)))
	t.AddRow("delta pages shipped", report.Comma(int64(r.DeltaPages)))
	if r.Migrations > 0 {
		t.AddRow("mean delta (pages/migration)", report.F2(float64(r.DeltaPages)/float64(r.Migrations)))
	}
	t.AddRow("sync rounds", report.Comma(int64(r.Rounds)))
	t.AddRow("messages exchanged", report.Comma(int64(r.Delivered)))
	t.AddRow("kernels tampered", report.Comma(int64(r.Tampered)))
	t.AddRow("kernels flagged", report.Comma(int64(r.Flagged)))
	t.AddRow("missed tampers", report.Comma(int64(r.MissedTampers)))
	t.AddRow("false flags", report.Comma(int64(r.FalseFlags)))
	t.AddRow("flags caught post-migration", report.Comma(int64(r.MigrantFlags)))
	t.AddRow("provision virtual time", fmt.Sprintf("%.2f s", r.ProvisionVirtSec))
	t.AddRow("churn virtual time", fmt.Sprintf("%.2f s", r.ChurnVirtSec))
	return t.Render()
}

// MegaStorm provisions cfg's grid through the per-shard control planes,
// runs the churn phase, audits every kernel, and aggregates the ledger.
// Zero-valued cfg fields take the defaults; o supplies the seed, the
// worker pool (which only changes wall-clock time — the artefact is
// byte-identical at any worker count), and the hv backend.
func MegaStorm(o Options, cfg MegaStormConfig) (*MegaStormResult, error) {
	o = o.withDefaults()
	d := DefaultMegaStormConfig()
	if cfg.Shards <= 0 {
		cfg.Shards = d.Shards
	}
	if cfg.HostsPerShard <= 0 {
		cfg.HostsPerShard = d.HostsPerShard
	}
	if cfg.GuestsPerHost <= 0 {
		cfg.GuestsPerHost = d.GuestsPerHost
	}
	if cfg.GuestMemMB <= 0 {
		cfg.GuestMemMB = d.GuestMemMB
	}
	if cfg.MigrationsPerShard <= 0 {
		cfg.MigrationsPerShard = d.MigrationsPerShard
	}
	if cfg.TampersPerShard <= 0 {
		cfg.TampersPerShard = d.TampersPerShard
	}
	if cfg.BurstPages <= 0 {
		cfg.BurstPages = d.BurstPages
	}
	perShard := cfg.HostsPerShard * cfg.GuestsPerHost
	if need := cfg.MigrationsPerShard + cfg.TampersPerShard; need > perShard {
		return nil, fmt.Errorf("megastorm: %d migrations + %d tampers exceed %d guests per shard",
			cfg.MigrationsPerShard, cfg.TampersPerShard, perShard)
	}
	if _, err := o.resolveBackend(); err != nil {
		return nil, err
	}
	g, err := shard.NewGrid(shard.GridConfig{
		Shards:        cfg.Shards,
		HostsPerShard: cfg.HostsPerShard,
		GuestsPerHost: cfg.GuestsPerHost,
		GuestMemMB:    cfg.GuestMemMB,
		Seed:          perRunSeed(o, "megastorm", 0),
		Workers:       o.Workers,
		InterShard:    megastormInterShard,
		Backend:       o.Backend,
	})
	if err != nil {
		return nil, err
	}

	base, err := g.Provision(megastormTenant)
	if err != nil {
		return nil, err
	}

	// Churn. Guests 0..M-1 of each shard burst-write their user region
	// and then migrate to the ring neighbour; the tamper set is guest 0
	// (so one corrupted kernel travels inside a migration delta) plus
	// M..M+T-2, which stay home. Offsets come from each shard's own
	// engine RNG — deterministic, but decorrelated across shards.
	expectTampered := make(map[string]bool)
	for i := 0; i < g.NumCells(); i++ {
		i := i
		cell := g.Cell(i)
		eng := cell.Shard.Engine()
		for k := 0; k < cfg.MigrationsPerShard; k++ {
			k := k
			gname := megastormTenant + "." + shard.GuestVMName(i, k)
			burstAt := base + 2*time.Millisecond + time.Duration(eng.RNG().Intn(20))*time.Millisecond
			eng.ScheduleAt(burstAt, "burst", func() {
				megastormBurst(cell, gname, cfg.BurstPages)
			})
			moveAt := burstAt + 25*time.Millisecond + time.Duration(eng.RNG().Intn(20))*time.Millisecond
			g.ScheduleMigration(i, (i+1)%g.NumCells(), gname, moveAt)
		}
		for j := 0; j < cfg.TampersPerShard; j++ {
			// Guest 0 (a migrant) plus the first T-1 stay-home guests.
			k := cfg.MigrationsPerShard + j - 1
			if j == 0 {
				k = 0
			}
			gname := megastormTenant + "." + shard.GuestVMName(i, k)
			expectTampered[gname] = true
			at := base + 5*time.Millisecond + time.Duration(eng.RNG().Intn(15))*time.Millisecond
			eng.ScheduleAt(at, "tamper", func() {
				megastormTamper(cell, gname)
			})
		}
	}
	end := base + 500*time.Millisecond
	if err := g.Run(end); err != nil {
		return nil, err
	}

	flagged, err := g.AuditKernels()
	if err != nil {
		return nil, err
	}

	st := g.Stats()
	res := &MegaStormResult{
		Config:           cfg,
		Hosts:            cfg.Shards * cfg.HostsPerShard,
		Guests:           st.Guests,
		Deployed:         st.Deployed,
		ForkSpawns:       st.ForkSpawns,
		GoldenImageHash:  g.Cell(0).Template.ContentHash(),
		Migrations:       st.MigrationsIn,
		DeltaPages:       st.DeltaPages,
		Rounds:           st.Rounds,
		Delivered:        st.Delivered,
		Tampered:         len(expectTampered),
		Flagged:          len(flagged),
		ProvisionVirtSec: base.Seconds(),
		ChurnVirtSec:     (end - base).Seconds(),
	}
	flaggedSet := make(map[string]bool, len(flagged))
	for _, gname := range flagged {
		flaggedSet[gname] = true
		if !expectTampered[gname] {
			res.FalseFlags++
		}
	}
	res.MissedTampers = res.Tampered - (res.Flagged - res.FalseFlags)
	// A flagged migrant was caught on a shard other than its birth shard:
	// its name records where it was born, its fleet records where it is.
	for i := 0; i < g.NumCells(); i++ {
		migrant := megastormTenant + "." + shard.GuestVMName(i, 0)
		if !flaggedSet[migrant] {
			continue
		}
		for _, gname := range g.Cell((i + 1) % g.NumCells()).Fleet.GuestNames() {
			if gname == migrant {
				res.MigrantFlags++
			}
		}
	}
	return res, nil
}

const megastormTenant = "mega"

// megastormBurst writes a deterministic pattern into the guest's user
// region — dirty pages the migration delta must carry and the kernel
// audit must ignore.
func megastormBurst(cell *shard.Cell, gname string, pages int) {
	info, err := cell.Fleet.Lookup(gname)
	if err != nil {
		return // already migrated away under an unlucky jitter draw
	}
	ram := info.Outer.RAM()
	start := ram.NumPages() / 2
	for p := start; p < start+pages && p < ram.NumPages(); p++ {
		ram.Write(p, 0xBEEF000000000000|mem.Content(p)) //nolint:errcheck
	}
}

// megastormTamper flips one kernel-region page — the CloudSkulk-style
// integrity violation the closing audit exists to find.
func megastormTamper(cell *shard.Cell, gname string) {
	info, err := cell.Fleet.Lookup(gname)
	if err != nil {
		return
	}
	info.Outer.RAM().Write(5, 0xDEAD) //nolint:errcheck
}
