package experiments

import (
	"fmt"
	"time"

	"cloudskulk/internal/core"
	"cloudskulk/internal/migrate"
	"cloudskulk/internal/qemu"
	"cloudskulk/internal/report"
	"cloudskulk/internal/runner"
	"cloudskulk/internal/stats"
	"cloudskulk/internal/workload"
)

// MigrationKind is one of the paper's two Fig. 4 series.
type MigrationKind string

// Fig. 4 series.
const (
	// MigrationL0L0 is a conventional same-host migration between two
	// L1 guests.
	MigrationL0L0 MigrationKind = "L0-L0"
	// MigrationL0L1 is the CloudSkulk shape: an L1 guest migrated into
	// an L2 guest nested inside the rootkit VM.
	MigrationL0L1 MigrationKind = "L0-L1"
)

// Figure4Cell is one (workload, kind) measurement series.
type Figure4Cell struct {
	Workload string
	Kind     MigrationKind
	Seconds  []float64
	// Converged reports whether every run's pre-copy converged.
	Converged bool
}

// Figure4Result holds the six cells of Fig. 4.
type Figure4Result struct {
	Cells []Figure4Cell
}

// figure4Workloads returns the paper's three guest activities.
func figure4Workloads() []workload.Profile {
	return []workload.Profile{
		workload.IdleProfile(),
		workload.FilebenchProfile(),
		workload.KernelCompileProfile(),
	}
}

// Figure4Migration reproduces Fig. 4: live-migration end-to-end time for
// idle / filebench / kernel-compile guests, both L0-L0 and L0-L1. The
// (workload, kind, run) grid is sharded across the worker pool; every run
// builds an isolated testbed from its own perRunSeed, so the assembled
// figure is independent of Options.Workers.
func Figure4Migration(o Options) (Figure4Result, error) {
	o = o.withDefaults()
	type gridCell struct {
		prof workload.Profile
		kind MigrationKind
		run  int
	}
	var cells []gridCell
	for _, prof := range figure4Workloads() {
		for _, kind := range []MigrationKind{MigrationL0L0, MigrationL0L1} {
			for run := 0; run < o.Runs; run++ {
				cells = append(cells, gridCell{prof, kind, run})
			}
		}
	}
	type outcome struct {
		secs      float64
		converged bool
	}
	outs, err := runner.Map(len(cells), o.runnerOptions(), func(i int) (outcome, error) {
		cl := cells[i]
		seed := perRunSeed(o, cellLabel("fig4", cl.prof.Name, string(cl.kind)), cl.run)
		secs, converged, err := migrateOnce(seed, o, cl.prof, cl.kind)
		if err != nil {
			return outcome{}, fmt.Errorf("fig4 %s/%s run %d: %w", cl.prof.Name, cl.kind, cl.run, err)
		}
		return outcome{secs, converged}, nil
	})
	if err != nil {
		return Figure4Result{}, err
	}
	var res Figure4Result
	for i := 0; i < len(cells); i += o.Runs {
		cell := Figure4Cell{Workload: cells[i].prof.Name, Kind: cells[i].kind, Converged: true}
		for run := 0; run < o.Runs; run++ {
			out := outs[i+run]
			cell.Seconds = append(cell.Seconds, out.secs)
			cell.Converged = cell.Converged && out.converged
		}
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// migrateOnce builds a fresh testbed, attaches the background workload to
// the victim, migrates it, and returns the end-to-end time.
func migrateOnce(seed int64, o Options, prof workload.Profile, kind MigrationKind) (float64, bool, error) {
	return migrateOnceWith(seed, o, prof, kind, nil)
}

// migrateOnceWith additionally lets the caller adjust the migration
// engine's tunables (capability ablations).
func migrateOnceWith(seed int64, o Options, prof workload.Profile, kind MigrationKind,
	configure func(*migrate.Engine)) (float64, bool, error) {
	c, err := NewCloud(seed, WithGuestMemMB(o.GuestMemMB), WithWorkloadProfile(prof),
		WithTelemetry(o.Telemetry), WithBackend(o.Backend))
	if err != nil {
		return 0, false, err
	}
	defer c.Background.Stop()
	if configure != nil {
		configure(c.Migration)
	}

	hv := c.Host.Hypervisor()
	switch kind {
	case MigrationL0L0:
		dstCfg := c.Victim.Config()
		dstCfg.Name = "dst"
		dstCfg.MonitorPort = 0
		dstCfg.NetDevs[0].HostFwds = nil
		dstCfg.Incoming = "tcp:0.0.0.0:4444"
		if _, err := hv.CreateVM(dstCfg); err != nil {
			return 0, false, err
		}
		if err := hv.Launch("dst"); err != nil {
			return 0, false, err
		}
	case MigrationL0L1:
		ritmCfg := qemu.DefaultConfig("guestX")
		ritmCfg.MemoryMB = o.GuestMemMB * 2
		ritmCfg.NetDevs[0].HostFwds = []qemu.FwdRule{{HostPort: 4444, GuestPort: 4444}}
		if _, err := hv.CreateVM(ritmCfg); err != nil {
			return 0, false, err
		}
		if err := hv.Launch("guestX"); err != nil {
			return 0, false, err
		}
		inner, err := hv.EnableNesting("guestX")
		if err != nil {
			return 0, false, err
		}
		dstCfg := c.Victim.Config()
		dstCfg.MonitorPort = 0
		dstCfg.Incoming = "tcp:0.0.0.0:4444"
		if _, err := inner.CreateVM(dstCfg); err != nil {
			return 0, false, err
		}
		if err := inner.Launch(dstCfg.Name); err != nil {
			return 0, false, err
		}
	}
	if _, err := c.Victim.Monitor().Execute("migrate -d tcp:127.0.0.1:4444"); err != nil {
		return 0, false, err
	}
	result, ok := c.Migration.LastResult()
	if !ok {
		return 0, false, fmt.Errorf("no migration result")
	}
	return result.TotalTime.Seconds(), result.Converged, nil
}

// Cell returns the named cell.
func (r Figure4Result) Cell(workloadName string, kind MigrationKind) (Figure4Cell, bool) {
	for _, c := range r.Cells {
		if c.Workload == workloadName && c.Kind == kind {
			return c, true
		}
	}
	return Figure4Cell{}, false
}

// Render draws the figure with both label sets the paper shows: absolute
// end-to-end times and the L0-L0 -> L0-L1 percentage increases.
func (r Figure4Result) Render() string {
	c := report.BarChart{
		Title: "Fig 4: Live migration end-to-end timing vs workload",
		Unit:  "s",
		Log:   true,
	}
	for _, prof := range figure4Workloads() {
		flat, _ := r.Cell(prof.Name, MigrationL0L0)
		nested, _ := r.Cell(prof.Name, MigrationL0L1)
		fs, _ := stats.Summarize(flat.Seconds)
		ns, _ := stats.Summarize(nested.Seconds)
		c.Add(prof.Name+" "+string(MigrationL0L0), fs.Mean,
			fmt.Sprintf("rsd %.1f%%", fs.RelStddev*100))
		note := fmt.Sprintf("%s vs L0-L0, rsd %.1f%%",
			report.Pct(stats.PercentChange(fs.Mean, ns.Mean)), ns.RelStddev*100)
		if !nested.Converged {
			note += ", non-converged"
		}
		c.Add(prof.Name+" "+string(MigrationL0L1), ns.Mean, note)
	}
	return c.Render()
}

// AblationDirtyRateResult sweeps guest dirty rate against migration time,
// exposing the pre-copy convergence knee Fig. 4's compile bar sits on.
type AblationDirtyRateResult struct {
	RatesPagesPerSec []float64
	Seconds          []float64
	Converged        []bool
}

// AblationDirtyRate measures L0-L0 migration time across dirty rates.
func AblationDirtyRate(o Options, rates []float64) (AblationDirtyRateResult, error) {
	o = o.withDefaults()
	type outcome struct {
		secs      float64
		converged bool
	}
	outs, err := runner.Map(len(rates), o.runnerOptions(), func(i int) (outcome, error) {
		prof := workload.Profile{
			Name:               fmt.Sprintf("sweep-%d", i),
			DirtyPagesPerSec:   rates[i],
			WorkingSetFraction: 0.5,
			DirtyRateJitter:    0.02,
		}
		secs, converged, err := migrateOnce(perRunSeed(o, "ablate-dirty", i), o, prof, MigrationL0L0)
		if err != nil {
			return outcome{}, err
		}
		return outcome{secs, converged}, nil
	})
	if err != nil {
		return AblationDirtyRateResult{}, err
	}
	var res AblationDirtyRateResult
	for i, out := range outs {
		res.RatesPagesPerSec = append(res.RatesPagesPerSec, rates[i])
		res.Seconds = append(res.Seconds, out.secs)
		res.Converged = append(res.Converged, out.converged)
	}
	return res, nil
}

// Render draws the sweep.
func (r AblationDirtyRateResult) Render() string {
	c := report.BarChart{
		Title: "Ablation: pre-copy convergence vs guest dirty rate (32 MiB/s link = 8192 pages/s)",
		Unit:  "s",
		Log:   true,
	}
	for i := range r.RatesPagesPerSec {
		note := "converged"
		if !r.Converged[i] {
			note = "forced stop"
		}
		c.Add(fmt.Sprintf("%5.0f pages/s", r.RatesPagesPerSec[i]), r.Seconds[i], note)
	}
	return c.Render()
}

// AblationMigrationFeaturesResult measures the CloudSkulk installation
// migration (compile workload, L0-L1 — the paper's worst case) under the
// migration capabilities newer QEMU versions ship: XBZRLE delta
// compression and auto-converge throttling. The paper's ~820 s number is a
// property of QEMU 2.9 defaults; capabilities change the attack's exposure
// window dramatically.
type AblationMigrationFeaturesResult struct {
	Variants  []string
	Seconds   []float64
	Converged []bool
}

// AblationMigrationFeatures runs the worst-case install migration under
// four capability configurations.
func AblationMigrationFeatures(o Options) (AblationMigrationFeaturesResult, error) {
	o = o.withDefaults()
	variants := []struct {
		name string
		conf func(*migrate.Engine)
	}{
		{"qemu-2.9 defaults", nil},
		{"xbzrle", func(e *migrate.Engine) { e.Tunables.XBZRLE = true }},
		{"auto-converge", func(e *migrate.Engine) {
			e.Tunables.AutoConverge = true
		}},
		{"xbzrle + auto-converge", func(e *migrate.Engine) {
			e.Tunables.XBZRLE = true
			e.Tunables.AutoConverge = true
		}},
	}
	type outcome struct {
		secs      float64
		converged bool
	}
	outs, err := runner.Map(len(variants), o.runnerOptions(), func(i int) (outcome, error) {
		v := variants[i]
		secs, converged, err := migrateOnceWith(
			perRunSeed(o, "ablate-feats", i), o,
			workload.KernelCompileProfile(), MigrationL0L1, v.conf)
		if err != nil {
			return outcome{}, fmt.Errorf("features %s: %w", v.name, err)
		}
		return outcome{secs, converged}, nil
	})
	var res AblationMigrationFeaturesResult
	if err != nil {
		return res, err
	}
	for i, v := range variants {
		res.Variants = append(res.Variants, v.name)
		res.Seconds = append(res.Seconds, outs[i].secs)
		res.Converged = append(res.Converged, outs[i].converged)
	}
	return res, nil
}

// Render draws the comparison.
func (r AblationMigrationFeaturesResult) Render() string {
	t := report.Table{
		Title:   "Ablation: worst-case install migration vs QEMU migration capabilities",
		Headers: []string{"capabilities", "end-to-end (s)", "converged"},
	}
	for i := range r.Variants {
		t.AddRow(r.Variants[i], report.F2(r.Seconds[i]),
			fmt.Sprintf("%v", r.Converged[i]))
	}
	return t.Render()
}

// AblationPrePostCopyResult compares installation time under the two
// migration algorithms the paper says the attack supports.
type AblationPrePostCopyResult struct {
	PreCopySeconds  float64
	PostCopySeconds float64
	PreDowntime     time.Duration
	PostDowntime    time.Duration
}

// AblationPrePostCopy installs the rootkit with pre-copy and with
// post-copy migration and compares end-to-end install cost.
func AblationPrePostCopy(o Options) (AblationPrePostCopyResult, error) {
	o = o.withDefaults()
	modes := []migrate.Mode{migrate.PreCopy, migrate.PostCopy}
	type outcome struct {
		secs     float64
		downtime time.Duration
	}
	outs, err := runner.Map(len(modes), o.runnerOptions(), func(i int) (outcome, error) {
		mode := modes[i]
		c, err := NewCloud(perRunSeed(o, "ablate-mode", int(mode)),
			WithGuestMemMB(o.GuestMemMB), WithTelemetry(o.Telemetry),
			WithBackend(o.Backend),
			// The victim is busy during the theft: pre-copy pays for that
			// with downtime at the end, post-copy does not.
			WithWorkloadProfile(workload.FilebenchProfile()))
		if err != nil {
			return outcome{}, err
		}
		defer c.Background.Stop()
		c.Migration.Tunables.Mode = mode
		rk, err := c.InstallRootkit(core.InstallConfig{})
		if err != nil {
			return outcome{}, fmt.Errorf("install with %v: %w", mode, err)
		}
		return outcome{rk.Report.TotalTime.Seconds(), rk.Report.Migration.Downtime}, nil
	})
	var res AblationPrePostCopyResult
	if err != nil {
		return res, err
	}
	res.PreCopySeconds = outs[0].secs
	res.PreDowntime = outs[0].downtime
	res.PostCopySeconds = outs[1].secs
	res.PostDowntime = outs[1].downtime
	return res, nil
}

// Render draws the comparison.
func (r AblationPrePostCopyResult) Render() string {
	t := report.Table{
		Title:   "Ablation: CloudSkulk install time, pre-copy vs post-copy migration",
		Headers: []string{"Mode", "install time (s)", "victim downtime (ms)"},
	}
	t.AddRow("pre-copy", report.F2(r.PreCopySeconds), report.F2(float64(r.PreDowntime.Milliseconds())))
	t.AddRow("post-copy", report.F2(r.PostCopySeconds), report.F2(float64(r.PostDowntime.Milliseconds())))
	return t.Render()
}
