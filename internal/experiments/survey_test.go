package experiments

import (
	"strings"
	"testing"

	"cloudskulk/internal/detect"
)

func TestMultiTenantSurvey(t *testing.T) {
	o := TestOptions()
	res, err := MultiTenantSurvey(o, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tenants) != 3 {
		t.Fatalf("tenants = %d", len(res.Tenants))
	}
	if !res.Correct() {
		for _, tn := range res.Tenants {
			t.Logf("%s: verdict=%v infected=%v", tn.Name, tn.Verdict, tn.Infected)
		}
		t.Fatal("survey misclassified a tenant")
	}
	for _, tn := range res.Tenants {
		want := detect.VerdictClean
		if tn.Infected {
			want = detect.VerdictNested
		}
		if tn.Verdict != want {
			t.Fatalf("%s verdict = %v, want %v", tn.Name, tn.Verdict, want)
		}
	}
	out := res.Render()
	for _, want := range []string{"tenant0", "tenant1", "tenant2", "CloudSkulk victim"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestMultiTenantSurveyParameterClamping(t *testing.T) {
	o := TestOptions()
	res, err := MultiTenantSurvey(o, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tenants) != 2 {
		t.Fatalf("clamped tenants = %d", len(res.Tenants))
	}
	if !res.Correct() {
		t.Fatal("clamped survey misclassified")
	}
}
