package experiments

import (
	"strings"
	"testing"
	"time"

	"cloudskulk/internal/core"
	"cloudskulk/internal/cpu"
	"cloudskulk/internal/detect"
)

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	d := DefaultOptions()
	if o.GuestMemMB != d.GuestMemMB || o.Runs != d.Runs || o.KSMWait != d.KSMWait {
		t.Fatalf("defaults not applied: %+v", o)
	}
}

func TestNewCloud(t *testing.T) {
	c, err := NewCloud(1, WithGuestMemMB(16))
	if err != nil {
		t.Fatal(err)
	}
	if !c.Victim.Running() {
		t.Fatal("victim not running")
	}
	if c.Victim.Config().MemoryMB != 16 {
		t.Fatalf("mem = %d", c.Victim.Config().MemoryMB)
	}
	// Duplicate endpoint error path.
	if _, err := NewCloud(1, WithGuestMemMB(16)); err != nil {
		t.Fatalf("second independent cloud failed: %v", err)
	}
}

func TestPerRunSeedsDiffer(t *testing.T) {
	o := TestOptions()
	a := perRunSeed(o, "cell-a", 0)
	b := perRunSeed(o, "cell-a", 1)
	c := perRunSeed(o, "cell-b", 0)
	if a == b || a == c {
		t.Fatalf("seeds collide: %d %d %d", a, b, c)
	}
	if a != perRunSeed(o, "cell-a", 0) {
		t.Fatal("seed not deterministic")
	}
}

func TestFigure2Shape(t *testing.T) {
	res, err := Figure2KernelCompile(TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	l0, l1, l2 := res.Mean(cpu.L0), res.Mean(cpu.L1), res.Mean(cpu.L2)
	// Paper shape: big L0->L1 gap (ccache), L2 = L1 * ~1.257.
	if r := l1 / l0; r < 2.8 || r > 4.8 {
		t.Fatalf("L1/L0 = %.2f, want ~3.8", r)
	}
	if r := l2 / l1; r < 1.20 || r > 1.32 {
		t.Fatalf("L2/L1 = %.3f, want ~1.257", r)
	}
	out := res.Render()
	for _, want := range []string{"Fig 2", "L0", "L1", "L2", "% vs layer below"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFigure3Shape(t *testing.T) {
	o := TestOptions()
	o.Runs = 5
	res, err := Figure3Netperf(o)
	if err != nil {
		t.Fatal(err)
	}
	l0, l1, l2 := res.Mean(cpu.L0), res.Mean(cpu.L1), res.Mean(cpu.L2)
	// All within 12% of each other — "nearly the same".
	for _, pair := range [][2]float64{{l0, l1}, {l1, l2}, {l0, l2}} {
		d := pair[1]/pair[0] - 1
		if d < -0.15 || d > 0.15 {
			t.Fatalf("levels differ too much: %v / %v / %v", l0, l1, l2)
		}
	}
	// L1's variance exceeds L0's (paper: 10.32% vs 1.11%).
	if res.RelStddev(cpu.L1) <= res.RelStddev(cpu.L0) {
		t.Logf("warning: L1 rsd %.3f <= L0 rsd %.3f (small-sample)",
			res.RelStddev(cpu.L1), res.RelStddev(cpu.L0))
	}
	if !strings.Contains(res.Render(), "Mbit/s") {
		t.Fatal("render missing unit")
	}
}

func TestFigure4Shape(t *testing.T) {
	o := TestOptions()
	o.Runs = 2
	res, err := Figure4Migration(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 6 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	mean := func(w string, k MigrationKind) float64 {
		c, ok := res.Cell(w, k)
		if !ok {
			t.Fatalf("missing cell %s/%s", w, k)
		}
		var sum float64
		for _, s := range c.Seconds {
			sum += s
		}
		return sum / float64(len(c.Seconds))
	}
	idleFlat := mean("idle", MigrationL0L0)
	idleNested := mean("idle", MigrationL0L1)
	fbNested := mean("filebench", MigrationL0L1)
	kcNested := mean("kernel-compile", MigrationL0L1)
	kcFlat := mean("kernel-compile", MigrationL0L0)

	// Orderings the paper reports: idle < filebench << kernel-compile,
	// and nested slower than flat.
	if !(idleNested < fbNested && fbNested < kcNested) {
		t.Fatalf("ordering wrong: idle %v, fb %v, kc %v", idleNested, fbNested, kcNested)
	}
	if idleNested <= idleFlat {
		t.Fatalf("nested idle (%v) not slower than flat (%v)", idleNested, idleFlat)
	}
	if kcNested <= kcFlat {
		t.Fatalf("nested compile (%v) not slower than flat (%v)", kcNested, kcFlat)
	}
	// The compile workload amplifies migration dramatically relative to
	// idle (paper: 26s -> 820s at full scale).
	if kcNested/idleNested < 3 {
		t.Fatalf("compile/idle nested ratio = %.1f, want large", kcNested/idleNested)
	}
	if !strings.Contains(res.Render(), "L0-L1") {
		t.Fatal("render missing series")
	}
}

func TestTable2And3And4(t *testing.T) {
	o := TestOptions()
	t2 := Table2Arithmetic(o)
	if len(t2.Ops) != 10 || len(t2.Nanos[cpu.L2]) != 10 {
		t.Fatalf("table2 = %+v", t2.Ops)
	}
	if !strings.Contains(t2.Render(), "integer div") {
		t.Fatal("table2 render")
	}
	t3 := Table3Processes(o)
	if len(t3.Ops) != 8 {
		t.Fatalf("table3 ops = %d", len(t3.Ops))
	}
	// pipe latency L2 >> L0 in the rendered data.
	var pipeIdx int
	for i, op := range t3.Ops {
		if op == "pipe latency" {
			pipeIdx = i
		}
	}
	if t3.Micros[cpu.L2][pipeIdx] < 10*t3.Micros[cpu.L0][pipeIdx] {
		t.Fatal("table3 lost the pipe explosion")
	}
	if !strings.Contains(t3.Render(), "fork+ exit") {
		t.Fatal("table3 render")
	}
	t4 := Table4FileOps(o)
	if len(t4.Labels) != 8 {
		t.Fatalf("table4 = %d", len(t4.Labels))
	}
	for i := range t4.Labels {
		r := t4.PerSec[cpu.L2][i] / t4.PerSec[cpu.L0][i]
		if r < 0.93 || r > 1.07 {
			t.Fatalf("table4 %s L2/L0 = %.2f, want ~1", t4.Labels[i], r)
		}
	}
	if !strings.Contains(t4.Render(), ",") {
		t.Fatal("table4 render missing thousands separators")
	}
}

func TestTable1(t *testing.T) {
	out := Table1CVE().Render()
	for _, want := range []string{"TABLE I", "VMware", "KVM/QEMU", "Total", "29", "23", "2015"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Full(t *testing.T) {
	out := Table1CVE().RenderFull()
	// Individual CVE identifiers appear, including VENOM and the 2018
	// VirtualBox batch; the totals row survives.
	for _, want := range []string{
		"CVE-2015-3456", "CVE-2018-2698", "CVE-2020-3971", "Total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("full table1 missing %q", want)
		}
	}
	// 96 CVE ids, one per line cell.
	if got := strings.Count(out, "CVE-"); got != 96 {
		t.Fatalf("full table1 lists %d CVEs, want 96", got)
	}
}

func TestFigure5And6(t *testing.T) {
	o := TestOptions()
	clean, err := Figure5DetectionClean(o)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Verdict != detect.VerdictClean {
		t.Fatalf("fig5 verdict = %v", clean.Verdict)
	}
	if clean.Evidence.T1.Mean() < 5*clean.Evidence.T2.Mean() {
		t.Fatalf("fig5 shape: t1 %v vs t2 %v", clean.Evidence.T1.Mean(), clean.Evidence.T2.Mean())
	}
	infected, err := Figure6DetectionInfected(o)
	if err != nil {
		t.Fatal(err)
	}
	if infected.Verdict != detect.VerdictNested {
		t.Fatalf("fig6 verdict = %v", infected.Verdict)
	}
	if infected.Evidence.T2.Mean() < 5*infected.Evidence.T0.Mean() {
		t.Fatalf("fig6 shape: t2 %v vs t0 %v", infected.Evidence.T2.Mean(), infected.Evidence.T0.Mean())
	}
	for _, out := range []string{clean.Render(), infected.Render()} {
		for _, want := range []string{"t0", "t1", "t2", "verdict"} {
			if !strings.Contains(out, want) {
				t.Fatalf("render missing %q:\n%s", want, out)
			}
		}
	}
}

func TestAblationExitMultiplier(t *testing.T) {
	res := AblationExitMultiplier(TestOptions(), []int{1, 9, 18, 36})
	if len(res.PipeL2Us) != 4 {
		t.Fatalf("rows = %d", len(res.PipeL2Us))
	}
	for i := 1; i < len(res.PipeL2Us); i++ {
		if res.PipeL2Us[i] <= res.PipeL2Us[i-1] {
			t.Fatal("pipe latency not monotone in multiplier")
		}
	}
	// The default (18) lands near the paper's 65.49µs.
	if res.PipeL2Us[2] < 55 || res.PipeL2Us[2] > 75 {
		t.Fatalf("default multiplier gives %.1fµs, paper 65.49", res.PipeL2Us[2])
	}
	if !strings.Contains(res.Render(), "65.49") {
		t.Fatal("render missing paper reference")
	}
}

func TestAblationDirtyRate(t *testing.T) {
	o := TestOptions()
	res, err := AblationDirtyRate(o, []float64{100, 4000, 7500})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seconds) != 3 {
		t.Fatalf("rows = %d", len(res.Seconds))
	}
	// Migration time grows with dirty rate.
	if !(res.Seconds[0] < res.Seconds[1] && res.Seconds[1] < res.Seconds[2]) {
		t.Fatalf("no knee: %v", res.Seconds)
	}
	if !strings.Contains(res.Render(), "pages/s") {
		t.Fatal("render")
	}
}

func TestAblationPrePostCopy(t *testing.T) {
	res, err := AblationPrePostCopy(TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.PreCopySeconds <= 0 || res.PostCopySeconds <= 0 {
		t.Fatalf("result = %+v", res)
	}
	// Post-copy's victim downtime is far smaller.
	if res.PostDowntime >= res.PreDowntime {
		t.Fatalf("downtimes: pre %v post %v", res.PreDowntime, res.PostDowntime)
	}
	if !strings.Contains(res.Render(), "post-copy") {
		t.Fatal("render")
	}
}

func TestAblationProbeSize(t *testing.T) {
	o := TestOptions()
	res, err := AblationProbeSize(o, []int{1, 10, 50})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Verdicts {
		if v != detect.VerdictNested {
			t.Fatalf("probe size %d verdict = %v", res.Pages[i], v)
		}
	}
	if !strings.Contains(res.Render(), "verdict") {
		t.Fatal("render")
	}
}

func TestAblationKSMWait(t *testing.T) {
	o := TestOptions()
	res, err := AblationKSMWait(o, []time.Duration{time.Millisecond, 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdicts[0] != detect.VerdictInconclusive {
		t.Fatalf("1ms wait verdict = %v", res.Verdicts[0])
	}
	if res.Verdicts[1] != detect.VerdictClean {
		t.Fatalf("10s wait verdict = %v", res.Verdicts[1])
	}
	if !strings.Contains(res.Render(), "wait") {
		t.Fatal("render")
	}
}

func TestBaselineComparison(t *testing.T) {
	res, err := BaselineComparison(TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]BaselineComparisonRow{}
	for _, r := range res.Rows {
		byName[r.Attacker] = r
	}
	def := byName["default (VT-x, impersonating)"]
	if def.DedupVerdict != detect.VerdictNested || def.VMCSFindings == 0 || def.FingerprintFlag {
		t.Fatalf("default row = %+v", def)
	}
	soft := byName["software MMU (VMCS hidden)"]
	if soft.DedupVerdict != detect.VerdictNested || soft.VMCSFindings != 0 {
		t.Fatalf("software row = %+v (dedup must still catch; VMCS must miss)", soft)
	}
	naive := byName["naive (no impersonation)"]
	if !naive.FingerprintFlag {
		t.Fatalf("naive row = %+v (fingerprint must catch)", naive)
	}
	if !strings.Contains(res.Render(), "VMCS scan") {
		t.Fatal("render")
	}
}

func TestInstallRootkitViaCloud(t *testing.T) {
	c, err := NewCloud(5, WithGuestMemMB(16))
	if err != nil {
		t.Fatal(err)
	}
	// Zero-value config takes the paper defaults and targets the cloud's
	// victim.
	rk, err := c.InstallRootkit(core.InstallConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rk.Victim.Name() != "guest0" || !rk.Victim.Running() {
		t.Fatalf("victim = %q %v", rk.Victim.Name(), rk.Victim.State())
	}
}
