package experiments

import (
	"fmt"
	"time"

	"cloudskulk/internal/core"
	"cloudskulk/internal/detect"
	"cloudskulk/internal/fleet"
	"cloudskulk/internal/report"
	"cloudskulk/internal/runner"
	"cloudskulk/internal/vnet"
)

// stormHostLinkBandwidth is the host<->host uplink used by the storm
// fleets. It is deliberately a notch above QEMU's 32 MiB/s default
// migration cap so contention becomes visible: one stream is capped by
// QEMU, but a storm converging on one trusted host splits the uplink and
// slows every stream down.
const stormHostLinkBandwidth = 64 << 20

// FleetStormRow aggregates one (hosts × concurrency × infected-fraction)
// configuration over all runs.
type FleetStormRow struct {
	Hosts        int
	Guests       int
	Infected     int
	Concurrent   int
	InfectedFrac float64
	// Coverage is the share of infected guests the post-migration sweep
	// flagged VerdictNested.
	Coverage float64
	// FalsePositives is the mean number of clean guests flagged per run.
	FalsePositives float64
	// MeanMoveSec / MaxMoveSec summarize per-guest migration wall time
	// (virtual) across the storm.
	MeanMoveSec float64
	MaxMoveSec  float64
	// Retries is the mean number of aborted-and-retried migration
	// attempts per run.
	Retries float64
}

// FleetStormResult is the migration-storm sweep table.
type FleetStormResult struct {
	Rows []FleetStormRow
}

// Render formats the sweep as an ASCII table.
func (r *FleetStormResult) Render() string {
	t := report.Table{
		Title: "Fleet migration storm: detection coverage and migration time",
		Headers: []string{"hosts", "guests", "infected", "concurrent",
			"coverage", "false+", "mean mig (s)", "max mig (s)", "retries"},
	}
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprintf("%d", row.Hosts),
			fmt.Sprintf("%d", row.Guests),
			fmt.Sprintf("%d", row.Infected),
			fmt.Sprintf("%d", row.Concurrent),
			fmt.Sprintf("%.0f%%", row.Coverage*100),
			report.F2(row.FalsePositives),
			report.F2(row.MeanMoveSec),
			report.F2(row.MaxMoveSec),
			report.F2(row.Retries),
		)
	}
	return t.Render()
}

// stormCell is one run's raw measurements.
type stormCell struct {
	infected int
	detected int
	falsePos int
	moveSecs []float64
	retries  int
}

// FleetMigrationStorm sweeps fleet size × concurrent migrations ×
// infected fraction. Each cell builds its own fleet (one guest per
// untrusted host, the first ⌈frac·guests⌉ infected by the CloudSkulk
// installer), fires a staggered storm of MigrateToTrusted calls so the
// streams contend for the trusted hosts' uplinks, rebinds each rootkit
// to its migrated stack, and then runs the fleet-wide dedup sweep.
// Cells shard across Options.Workers; output is byte-identical for any
// worker count.
func FleetMigrationStorm(o Options, hostCounts, concurrencies []int, infectedFracs []float64) (*FleetStormResult, error) {
	o = o.withDefaults()
	type config struct {
		hosts int
		conc  int
		frac  float64
	}
	var configs []config
	for _, h := range hostCounts {
		for _, c := range concurrencies {
			for _, fr := range infectedFracs {
				configs = append(configs, config{h, c, fr})
			}
		}
	}
	cells, err := runner.Map(len(configs)*o.Runs, o.runnerOptions(), func(i int) (stormCell, error) {
		cfg := configs[i/o.Runs]
		run := i % o.Runs
		label := cellLabel("fleetstorm",
			fmt.Sprintf("h%d", cfg.hosts),
			fmt.Sprintf("c%d", cfg.conc),
			fmt.Sprintf("f%.2f", cfg.frac))
		return stormOnce(o, cfg.hosts, cfg.conc, cfg.frac, perRunSeed(o, label, run))
	})
	if err != nil {
		return nil, err
	}

	res := &FleetStormResult{}
	for ci, cfg := range configs {
		row := FleetStormRow{Hosts: cfg.hosts, Concurrent: cfg.conc, InfectedFrac: cfg.frac}
		var covNum, covDen, moves int
		var sumSec, maxSec float64
		var falsePos, retries int
		for run := 0; run < o.Runs; run++ {
			cell := cells[ci*o.Runs+run]
			covNum += cell.detected
			covDen += cell.infected
			falsePos += cell.falsePos
			retries += cell.retries
			for _, s := range cell.moveSecs {
				sumSec += s
				moves++
				if s > maxSec {
					maxSec = s
				}
			}
			row.Infected = cell.infected
		}
		row.Guests = guestsForHosts(cfg.hosts)
		if covDen > 0 {
			row.Coverage = float64(covNum) / float64(covDen)
		} else {
			row.Coverage = 1
		}
		row.FalsePositives = float64(falsePos) / float64(o.Runs)
		row.Retries = float64(retries) / float64(o.Runs)
		if moves > 0 {
			row.MeanMoveSec = sumSec / float64(moves)
		}
		row.MaxMoveSec = maxSec
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// guestsForHosts mirrors stormOnce's layout: one guest per untrusted
// host, the trailing quarter of hosts trusted.
func guestsForHosts(hosts int) int {
	trusted := hosts / 4
	if trusted < 1 {
		trusted = 1
	}
	return hosts - trusted
}

func stormOnce(o Options, hosts, conc int, frac float64, seed int64) (stormCell, error) {
	flOpts := []fleet.Option{
		fleet.WithHosts(hosts),
		fleet.WithHostLink(vnet.LinkSpec{Bandwidth: stormHostLinkBandwidth, Latency: 500 * time.Microsecond}),
		fleet.WithRetry(3, 2*time.Second),
		fleet.WithBackend(o.Backend),
	}
	if o.Telemetry != nil {
		// Share the experiment-wide registry instead of the fleet's
		// private default one.
		flOpts = append(flOpts, fleet.WithTelemetry(o.Telemetry))
	}
	fl, err := fleet.New(seed, flOpts...)
	if err != nil {
		return stormCell{}, err
	}
	trusted := make(map[string]bool)
	for _, h := range fl.TrustedHosts() {
		trusted[h] = true
	}
	var guests []string
	for _, h := range fl.HostNames() {
		if trusted[h] {
			continue
		}
		name := fmt.Sprintf("g%02d", len(guests))
		if _, err := fl.StartGuest(h, name, o.GuestMemMB); err != nil {
			return stormCell{}, err
		}
		guests = append(guests, name)
	}

	infected := int(frac*float64(len(guests)) + 0.5)
	if frac > 0 && infected < 1 {
		infected = 1
	}
	if infected > len(guests) {
		infected = len(guests)
	}
	rootkits := make(map[string]*core.Rootkit, infected)
	for _, name := range guests[:infected] {
		info, err := fl.Lookup(name)
		if err != nil {
			return stormCell{}, err
		}
		host, err := fl.Host(info.Host)
		if err != nil {
			return stormCell{}, err
		}
		icfg := core.DefaultInstallConfig()
		icfg.TargetName = name
		icfg.RITMName = name + "-x"
		rk, err := core.Installer{Host: host, Migration: fl.Migration()}.Install(icfg)
		if err != nil {
			return stormCell{}, err
		}
		rootkits[name] = rk
	}

	// The storm: the first conc guests (infected first — they are the
	// suspects) head for trusted hosts on staggered starts, so their
	// streams overlap and contend.
	if conc > len(guests) {
		conc = len(guests)
	}
	cell := stormCell{infected: infected}
	var moveErr error
	for i, name := range guests[:conc] {
		name := name
		fl.Engine().Schedule(time.Duration(i)*50*time.Millisecond, "storm.migrate", func() {
			rep, err := fl.MigrateToTrusted(name)
			if err != nil {
				if moveErr == nil {
					moveErr = fmt.Errorf("storm move %q: %w", name, err)
				}
				return
			}
			cell.moveSecs = append(cell.moveSecs, rep.Duration.Seconds())
			cell.retries += rep.Retries
		})
	}
	fl.Engine().RunFor(time.Duration(conc) * 50 * time.Millisecond)
	if moveErr != nil {
		return stormCell{}, moveErr
	}

	// The interposition travels with each migrated stack: rebind the
	// rootkits' handles before detection probes them.
	for name, rk := range rootkits {
		info, err := fl.Lookup(name)
		if err != nil {
			return stormCell{}, err
		}
		rk.RITM, rk.Victim = info.Outer, info.Inner
	}

	verdicts, err := fl.SweepDetect(fleet.SweepOptions{
		Pages: o.DetectPages,
		Wait:  o.KSMWait,
		OnAgent: func(guest string, agent *detect.GuestAgent) {
			if rk, ok := rootkits[guest]; ok {
				agent.OnLoad = rk.InterceptFilePushes(mirrorPageOffset)
			}
		},
	})
	if err != nil {
		return stormCell{}, err
	}
	for _, v := range verdicts {
		_, isInfected := rootkits[v.Guest]
		switch {
		case isInfected && v.Verdict == detect.VerdictNested:
			cell.detected++
		case !isInfected && v.Verdict == detect.VerdictNested:
			cell.falsePos++
		}
	}
	return cell, nil
}
