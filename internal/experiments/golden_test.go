package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
	"time"

	"cloudskulk/internal/telemetry"
)

// goldenArtefactHashes pins the SHA-256 of rendered experiment artefacts
// and telemetry exports, captured from the tree BEFORE the PR-4 hot-path
// optimisations (event pooling, word-level dirty harvesting, checksum-gated
// KSM, incremental space hashing). Any optimisation that perturbs RNG draw
// order, event ordering, or KSM merge behaviour shows up here as a hash
// mismatch. Keys are "<artefact>/seed=<n>".
var goldenArtefactHashes = map[string]string{
	"detect-infected/seed=1":  "5edd9fd4428670bd1d605f715ac001f69ab4ba806a5fe786e452a604af1e77df",
	"detect-infected/seed=7":  "4858e5278b275cd2690234c212519ccf0743dcbc4bb2053fafbe10f9066583eb",
	"detect-clean/seed=1":     "cfd6a9250ae3552ec6d3f3e59bacab2ba1a87086356d30b59ce26fa35b7299e5",
	"fig4-migration/seed=1":   "d2b4225b19b753010a0c1ac2a9812652f5eeb70b1e4afebde9b4e4fb206f2440",
	"fig4-migration/seed=7":   "5df2845f8bdb85a0da01686af9e4b7acf1de510b7b25a3f3fc8944b3503cf45d",
	"fleetstorm/seed=1":       "56dcdc87852c01407df34f160d15c2af3c8b28bf89210afd1310d2fd64c9bfe4",
	"fleetstorm/seed=7":       "56dcdc87852c01407df34f160d15c2af3c8b28bf89210afd1310d2fd64c9bfe4",
	"ablate-ksmwait/seed=1":   "fbeb83f862b2225b1acd0b4fc714841e0312d9e1c7c2868f65fef782e9dd5ee0",
	"telemetry-export/seed=1": "8a0acfdb12287ff3892d5a6ee8c5033636c44a6c6ce2836f97497e8e76716c88",
	"telemetry-export/seed=7": "24520eec7f9675e825f6adb2ad13924331c55c50863c07c2725e5c1d89ac5ee0",
}

func sha(s string) string {
	h := sha256.Sum256([]byte(s))
	return hex.EncodeToString(h[:])
}

// goldenArtefacts renders every pinned artefact for one seed at the given
// worker count. Artefact content must not depend on workers; the test runs
// both serial and wide to prove it.
func goldenArtefacts(t *testing.T, seed int64, workers int) map[string]string {
	t.Helper()
	o := TestOptions()
	o.Seed = seed
	o.Workers = workers
	key := func(name string) string { return fmt.Sprintf("%s/seed=%d", name, seed) }
	out := make(map[string]string)

	inf, err := Figure6DetectionInfected(o)
	if err != nil {
		t.Fatal(err)
	}
	out[key("detect-infected")] = sha(inf.Render())

	if seed == 1 {
		clean, err := Figure5DetectionClean(o)
		if err != nil {
			t.Fatal(err)
		}
		out[key("detect-clean")] = sha(clean.Render())

		kw, err := AblationKSMWait(o, []time.Duration{2 * time.Second, 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		out[key("ablate-ksmwait")] = sha(kw.Render())
	}

	fig4, err := Figure4Migration(o)
	if err != nil {
		t.Fatal(err)
	}
	out[key("fig4-migration")] = sha(fig4.Render())

	storm, err := FleetMigrationStorm(o, []int{4}, []int{2}, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	out[key("fleetstorm")] = sha(storm.Render())

	to := o
	to.Telemetry = telemetry.NewRegistry()
	if _, err := Figure4Migration(to); err != nil {
		t.Fatal(err)
	}
	if _, err := FleetMigrationStorm(to, []int{4}, []int{2}, []float64{0.5}); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := to.Telemetry.WriteJSONLines(&b); err != nil {
		t.Fatal(err)
	}
	b.WriteString(to.Telemetry.PromText())
	out[key("telemetry-export")] = sha(b.String())
	return out
}

// TestGoldenArtefactHashes: one detection, one migration, and one
// fleet-storm experiment (plus the KSM-wait ablation, the artefact most
// sensitive to KSM scan-loop changes, and the telemetry exports) hash to
// exactly the values captured before the hot-path overhaul, across seeds
// and worker counts.
func TestGoldenArtefactHashes(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		for _, workers := range []int{1, 8} {
			got := goldenArtefacts(t, seed, workers)
			for name, h := range got {
				want := goldenArtefactHashes[name]
				if want == "" {
					t.Logf("CAPTURE %q: %q,", name, h)
					continue
				}
				if h != want {
					t.Errorf("seed=%d workers=%d artefact %s hash = %s, want %s (output changed vs pre-optimisation tree)",
						seed, workers, name, h, want)
				}
			}
		}
	}
	for name, want := range goldenArtefactHashes {
		if want == "" {
			t.Errorf("golden hash for %s not captured — run with -v and paste the CAPTURE lines", name)
		}
	}
}
