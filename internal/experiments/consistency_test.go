package experiments

import (
	"math"
	"testing"

	"cloudskulk/internal/core"
	"cloudskulk/internal/cpu"
	"cloudskulk/internal/workload"
)

// TestTablesMatchRealNesting validates the experiment harness's shortcut:
// Tables II-IV measure in synthetic per-level contexts, so this test
// re-measures inside the *actual* nested victim of a real CloudSkulk
// install and checks the numbers agree. If the synthetic contexts ever
// drift from what the attack really produces, this fails.
func TestTablesMatchRealNesting(t *testing.T) {
	o := TestOptions()
	c, err := NewCloud(o.Seed, WithGuestMemMB(o.GuestMemMB))
	if err != nil {
		t.Fatal(err)
	}
	rk, err := c.InstallRootkit(core.InstallConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rk.Victim.Level() != cpu.L2 {
		t.Fatalf("victim level = %v", rk.Victim.Level())
	}

	// Noise off on both sides for exact comparison.
	real := workload.VMContext(rk.Victim)
	real.VCPU.Noise = 0
	synthetic := levelContext(o, o.Seed, cpu.L2, o.GuestMemMB)
	synthetic.VCPU.Noise = 0

	ops := append(workload.ArithmeticOps(), workload.ProcessOps()...)
	for _, op := range ops {
		a := real.VCPU.MeasureMean(op, 200)
		b := synthetic.VCPU.MeasureMean(op, 200)
		if a == 0 && b == 0 {
			continue
		}
		diff := math.Abs(float64(a)-float64(b)) / math.Max(float64(a), float64(b))
		if diff > 0.001 {
			t.Errorf("%s: real nested %v vs synthetic %v", op.Name, a, b)
		}
	}

	// And the Fig. 2 compile shape holds inside the real victim too.
	k := workload.DefaultKernelCompile(false)
	k.Units = 60
	dReal, err := k.Run(real)
	if err != nil {
		t.Fatal(err)
	}
	dSynth, err := k.Run(synthetic)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(dReal) / float64(dSynth)
	if ratio < 0.999 || ratio > 1.001 {
		t.Fatalf("compile inside real victim %v vs synthetic %v", dReal, dSynth)
	}
}
