package experiments

import (
	"fmt"
	"sort"
	"time"

	"cloudskulk/internal/controlplane"
	"cloudskulk/internal/fleet"
	"cloudskulk/internal/loadgen"
	"cloudskulk/internal/report"
	"cloudskulk/internal/runner"
)

// CloudLoadConfig sizes the control-plane load experiment. The run
// shards into Cells independent (fleet, plane, generator) triples, each
// seeded from the experiment seed and its cell index, so the total
// tenant and op counts are Cells × per-cell values and the artefact is
// byte-identical for any worker count.
type CloudLoadConfig struct {
	Cells          int
	TenantsPerCell int
	OpsPerCell     int
	HostsPerCell   int
	HostMemMB      int64
	Flavors        []int64
	Mix            loadgen.Mix
	MeanGap        time.Duration
	Quota          controlplane.Quota
	MaxQueue       int
	Slots          int
}

// DefaultCloudLoadConfig is the headline configuration: 64 cells × 160
// tenants × 16 000 ops = 10 240 tenants issuing 1 024 000 operations
// against 512 simulated hosts. Quotas and host budgets are set so the
// fleet saturates mid-run: the artefact exercises quota rejects,
// admission sheds, placement retries, and failures together.
func DefaultCloudLoadConfig() CloudLoadConfig {
	return CloudLoadConfig{
		Cells:          64,
		TenantsPerCell: 160,
		OpsPerCell:     16000,
		HostsPerCell:   8,
		HostMemMB:      256,
		Flavors:        []int64{4, 8},
		Mix:            loadgen.Mix{Deploy: 4, Stop: 2, Migrate: 1, Snapshot: 1, List: 46, Usage: 46},
		MeanGap:        500 * time.Millisecond,
		Quota:          controlplane.Quota{MaxVMs: 3, MaxMemMB: 24, MaxJobs: 2},
		MaxQueue:       6,
		Slots:          3,
	}
}

// QuickCloudLoadConfig is a seconds-scale configuration for -scale
// quick and smoke tests.
func QuickCloudLoadConfig() CloudLoadConfig {
	c := DefaultCloudLoadConfig()
	c.Cells = 8
	c.TenantsPerCell = 40
	c.OpsPerCell = 500
	return c
}

// CloudLoadResult is the aggregated million-op ledger.
type CloudLoadResult struct {
	Config CloudLoadConfig

	// Submission ledger, summed over cells.
	Issued           int
	Mutations        int
	Reads            int
	Accepted         int
	QuotaRejects     int
	AdmissionRejects int
	OtherRejects     int

	// Job outcomes.
	Succeeded int
	Failed    int
	Retries   int

	// P50/P99 are job submit-to-terminal latencies over every terminal
	// job in every cell, in microseconds of virtual time.
	P50us int64
	P99us int64
	// ThroughputPerMin is terminal jobs per virtual minute, aggregated
	// over cells.
	ThroughputPerMin float64
	// SurvivingVMs counts guests alive when the load went quiet.
	SurvivingVMs int
	// MeanSpreadMB is the mean over cells of (max − min) host free
	// memory — the placement-quality figure (0 = perfectly balanced).
	MeanSpreadMB int64
	// UtilizationPct is used guest memory over fleet capacity at the
	// end of the run, in percent.
	UtilizationPct int64
}

// Render formats the ledger as an ASCII table.
func (r *CloudLoadResult) Render() string {
	c := r.Config
	t := report.Table{
		Title: fmt.Sprintf("Cloud control-plane load: %s tenants, %s ops, %d hosts (%d cells)",
			report.Comma(int64(c.Cells*c.TenantsPerCell)),
			report.Comma(int64(c.Cells*c.OpsPerCell)),
			c.Cells*c.HostsPerCell, c.Cells),
		Headers: []string{"metric", "value"},
	}
	pct := func(n, d int) string {
		if d == 0 {
			return "0.0%"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(d))
	}
	t.AddRow("ops issued", report.Comma(int64(r.Issued)))
	t.AddRow("reads (list/usage)", report.Comma(int64(r.Reads)))
	t.AddRow("mutations submitted", report.Comma(int64(r.Mutations)))
	t.AddRow("jobs accepted", report.Comma(int64(r.Accepted)))
	t.AddRow("quota rejects", fmt.Sprintf("%s (%s)", report.Comma(int64(r.QuotaRejects)), pct(r.QuotaRejects, r.Mutations)))
	t.AddRow("admission rejects", fmt.Sprintf("%s (%s)", report.Comma(int64(r.AdmissionRejects)), pct(r.AdmissionRejects, r.Mutations)))
	t.AddRow("other rejects", report.Comma(int64(r.OtherRejects)))
	t.AddRow("jobs succeeded", fmt.Sprintf("%s (%s)", report.Comma(int64(r.Succeeded)), pct(r.Succeeded, r.Accepted)))
	t.AddRow("jobs failed", report.Comma(int64(r.Failed)))
	t.AddRow("job retries", report.Comma(int64(r.Retries)))
	t.AddRow("job latency p50", fmt.Sprintf("%.2f ms", float64(r.P50us)/1000))
	t.AddRow("job latency p99", fmt.Sprintf("%.2f ms", float64(r.P99us)/1000))
	t.AddRow("throughput", fmt.Sprintf("%.1f jobs/sim-min", r.ThroughputPerMin))
	t.AddRow("surviving VMs", report.Comma(int64(r.SurvivingVMs)))
	t.AddRow("placement spread", fmt.Sprintf("%d MB", r.MeanSpreadMB))
	t.AddRow("fleet utilization", fmt.Sprintf("%d%%", r.UtilizationPct))
	return t.Render()
}

// cloudloadCell is one shard's raw outcome.
type cloudloadCell struct {
	stats    loadgen.Stats
	latUS    []int64 // terminal-job latencies, µs, in job-ID order
	vms      int
	spreadMB int64
	usedMB   int64
}

// CloudLoad drives cfg's tenant population through a control plane per
// cell and aggregates the ledgers. Zero-valued cfg fields take the
// defaults; o supplies the seed, the worker pool, the hv backend, and
// (optionally) a shared telemetry registry.
func CloudLoad(o Options, cfg CloudLoadConfig) (*CloudLoadResult, error) {
	o = o.withDefaults()
	d := DefaultCloudLoadConfig()
	if cfg.Cells <= 0 {
		cfg.Cells = d.Cells
	}
	if cfg.TenantsPerCell <= 0 {
		cfg.TenantsPerCell = d.TenantsPerCell
	}
	if cfg.OpsPerCell <= 0 {
		cfg.OpsPerCell = d.OpsPerCell
	}
	if cfg.HostsPerCell <= 0 {
		cfg.HostsPerCell = d.HostsPerCell
	}
	if cfg.HostMemMB <= 0 {
		cfg.HostMemMB = d.HostMemMB
	}
	if len(cfg.Flavors) == 0 {
		cfg.Flavors = d.Flavors
	}
	if cfg.Mix == (loadgen.Mix{}) {
		cfg.Mix = d.Mix
	}
	if cfg.MeanGap <= 0 {
		cfg.MeanGap = d.MeanGap
	}
	if cfg.Quota == (controlplane.Quota{}) {
		cfg.Quota = d.Quota
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = d.MaxQueue
	}
	if cfg.Slots <= 0 {
		cfg.Slots = d.Slots
	}
	if _, err := o.resolveBackend(); err != nil {
		return nil, err
	}

	cells, err := runner.Map(cfg.Cells, o.runnerOptions(), func(i int) (cloudloadCell, error) {
		label := cellLabel("cloudload", fmt.Sprintf("cell%03d", i))
		return cloudloadOnce(o, cfg, perRunSeed(o, label, 0), perRunSeed(o, label+"/load", 0))
	})
	if err != nil {
		return nil, err
	}

	res := &CloudLoadResult{Config: cfg}
	var latencies []int64
	var totalVirtual time.Duration
	var totalSpread, totalUsed, capacity int64
	for _, cell := range cells {
		s := cell.stats
		res.Issued += s.Issued
		res.Mutations += s.Mutations
		res.Reads += s.Reads
		res.Accepted += s.Accepted
		res.QuotaRejects += s.QuotaRejects
		res.AdmissionRejects += s.AdmissionRejects
		res.OtherRejects += s.OtherRejects
		res.Succeeded += s.Succeeded
		res.Failed += s.Failed
		res.Retries += s.Retries
		res.SurvivingVMs += cell.vms
		latencies = append(latencies, cell.latUS...)
		totalVirtual += s.VirtualTime
		totalSpread += cell.spreadMB
		totalUsed += cell.usedMB
		capacity += int64(cfg.HostsPerCell) * cfg.HostMemMB
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	res.P50us = percentile(latencies, 50)
	res.P99us = percentile(latencies, 99)
	if totalVirtual > 0 {
		res.ThroughputPerMin = float64(res.Succeeded+res.Failed) /
			(float64(totalVirtual) / float64(time.Minute))
	}
	res.MeanSpreadMB = totalSpread / int64(cfg.Cells)
	if capacity > 0 {
		res.UtilizationPct = totalUsed * 100 / capacity
	}
	return res, nil
}

// percentile picks the p-th percentile of a sorted slice by
// nearest-rank; 0 on empty input.
func percentile(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted) - 1) * p / 100
	return sorted[idx]
}

// cloudloadOnce runs one cell: fleet, plane, load, final accounting.
func cloudloadOnce(o Options, cfg CloudLoadConfig, fleetSeed, loadSeed int64) (cloudloadCell, error) {
	specs := make([]fleet.HostSpec, cfg.HostsPerCell)
	for i := range specs {
		specs[i] = fleet.HostSpec{Name: fmt.Sprintf("h%02d", i), MemMB: cfg.HostMemMB}
	}
	flOpts := []fleet.Option{
		fleet.WithHostSpecs(specs...),
		fleet.WithRetry(3, 250*time.Millisecond),
		fleet.WithBackend(o.Backend),
	}
	if o.Telemetry != nil {
		flOpts = append(flOpts, fleet.WithTelemetry(o.Telemetry))
	}
	fl, err := fleet.New(fleetSeed, flOpts...)
	if err != nil {
		return cloudloadCell{}, err
	}
	plane := controlplane.New(fl, controlplane.Config{
		MaxQueue: cfg.MaxQueue,
		Slots:    cfg.Slots,
	})
	stats, err := loadgen.Run(plane, loadgen.Options{
		Tenants: cfg.TenantsPerCell,
		Ops:     cfg.OpsPerCell,
		Seed:    loadSeed,
		Mix:     cfg.Mix,
		MeanGap: cfg.MeanGap,
		Flavors: cfg.Flavors,
		Quota:   cfg.Quota,
	})
	if err != nil {
		return cloudloadCell{}, err
	}
	cell := cloudloadCell{stats: stats, vms: len(fl.GuestNames())}
	for _, j := range plane.Jobs() {
		if j.State == controlplane.JobSucceeded || j.State == controlplane.JobFailed {
			cell.latUS = append(cell.latUS, int64(j.Latency()/time.Microsecond))
		}
	}
	minFree, maxFree := int64(-1), int64(-1)
	for _, h := range fl.HostNames() {
		free := fl.FreeMemMB(h)
		if minFree < 0 || free < minFree {
			minFree = free
		}
		if free > maxFree {
			maxFree = free
		}
		cell.usedMB += cfg.HostMemMB - free
	}
	cell.spreadMB = maxFree - minFree
	return cell, nil
}
