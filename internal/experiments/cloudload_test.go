package experiments

import (
	"bytes"
	"strings"
	"testing"

	"cloudskulk/internal/telemetry"
)

// TestCloudLoadSmoke: the quick-scale run's aggregate ledger adds up and
// every interesting control-plane path fires somewhere in the population.
func TestCloudLoadSmoke(t *testing.T) {
	o := TestOptions()
	r, err := CloudLoad(o, QuickCloudLoadConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := r.Config
	if want := cfg.Cells * cfg.OpsPerCell; r.Issued != want {
		t.Fatalf("issued = %d, want %d", r.Issued, want)
	}
	if r.Mutations+r.Reads != r.Issued {
		t.Fatalf("mutations %d + reads %d != issued %d", r.Mutations, r.Reads, r.Issued)
	}
	if got := r.Accepted + r.QuotaRejects + r.AdmissionRejects + r.OtherRejects; got != r.Mutations {
		t.Fatalf("submit outcomes %d != mutations %d", got, r.Mutations)
	}
	if r.Succeeded+r.Failed != r.Accepted {
		t.Fatalf("terminal jobs %d+%d != accepted %d", r.Succeeded, r.Failed, r.Accepted)
	}
	if r.Accepted == 0 || r.QuotaRejects == 0 || r.AdmissionRejects == 0 {
		t.Fatalf("a reject path never fired: %+v", r)
	}
	if r.P50us <= 0 || r.P99us < r.P50us {
		t.Fatalf("implausible latency percentiles: p50=%d p99=%d", r.P50us, r.P99us)
	}
	if r.SurvivingVMs == 0 || r.UtilizationPct == 0 {
		t.Fatalf("degenerate fleet population: %+v", r)
	}
	if !strings.Contains(r.Render(), "admission rejects") {
		t.Fatal("render missing admission row")
	}
}

// TestCloudLoadWorkerInvariance: the quick-scale artefact is byte-identical
// serial and wide, and so is the telemetry export accumulated across cells.
func TestCloudLoadWorkerInvariance(t *testing.T) {
	render := func(workers int) (string, string) {
		o := TestOptions()
		o.Workers = workers
		o.Telemetry = telemetry.NewRegistry()
		r, err := CloudLoad(o, QuickCloudLoadConfig())
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := o.Telemetry.WriteJSONLines(&b); err != nil {
			t.Fatal(err)
		}
		b.WriteString(o.Telemetry.PromText())
		return r.Render(), b.String()
	}
	serialArt, serialTele := render(1)
	wideArt, wideTele := render(8)
	if serialArt != wideArt {
		t.Errorf("artefact depends on worker count:\n--- serial ---\n%s\n--- wide ---\n%s", serialArt, wideArt)
	}
	if serialTele != wideTele {
		t.Error("telemetry export depends on worker count")
	}
}

// cloudloadGoldenHashes pins the full-scale million-op artefact per seed.
// The capture workflow matches golden_test.go: leave a value empty, run
// with -v, paste the CAPTURE line.
var cloudloadGoldenHashes = map[string]string{
	"cloudload/seed=1": "4b6856e4930c6b0449cd7500bdc72f67fdedf51db3a8dae331361ee08ed9cb30",
	"cloudload/seed=7": "34a84ef5ac72941463fb6d65926858b500f249ec7180d44834c6386611a801fe",
}

// TestCloudLoadGoldenMatrix: the full DefaultCloudLoadConfig run — 10,240
// tenants, 1,024,000 ops — hashes to the pinned value for each seed at both
// worker counts.
func TestCloudLoadGoldenMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale cloudload matrix skipped in -short")
	}
	for _, seed := range []int64{1, 7} {
		for _, workers := range []int{1, 8} {
			o := TestOptions()
			o.Seed = seed
			o.Workers = workers
			r, err := CloudLoad(o, DefaultCloudLoadConfig())
			if err != nil {
				t.Fatal(err)
			}
			name := "cloudload/seed=" + map[int64]string{1: "1", 7: "7"}[seed]
			h := sha(r.Render())
			want := cloudloadGoldenHashes[name]
			if want == "" {
				t.Logf("CAPTURE %q: %q,", name, h)
				continue
			}
			if h != want {
				t.Errorf("seed=%d workers=%d cloudload hash = %s, want %s", seed, workers, h, want)
			}
		}
	}
	for name, want := range cloudloadGoldenHashes {
		if want == "" {
			t.Errorf("golden hash for %s not captured — run with -v and paste the CAPTURE lines", name)
		}
	}
}
