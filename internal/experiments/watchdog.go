package experiments

import (
	"fmt"
	"time"

	"cloudskulk/internal/core"
	"cloudskulk/internal/detect"
	"cloudskulk/internal/report"
	"cloudskulk/internal/vnet"
)

// TimeToDetectResult measures the gap between infection and the watchdog's
// alert under periodic scanning.
type TimeToDetectResult struct {
	ScanPeriod   time.Duration
	InfectedAt   time.Duration
	AlertAt      time.Duration
	TimeToDetect time.Duration
	ScansRun     uint64
}

// TimeToDetect deploys the watchdog on a clean host, lets it run, infects
// the tenant mid-flight, and measures when the alert fires.
func TimeToDetect(o Options, scanPeriod time.Duration) (TimeToDetectResult, error) {
	o = o.withDefaults()
	res := TimeToDetectResult{ScanPeriod: scanPeriod}
	c, err := NewCloud(o.Seed, WithGuestMemMB(o.GuestMemMB), WithTelemetry(o.Telemetry), WithBackend(o.Backend))
	if err != nil {
		return res, err
	}
	c.Host.KSM().Start()
	d := detect.NewDedupDetector(c.Host)
	d.Pages = o.DetectPages
	d.Wait = o.KSMWait

	// The rootkit handle appears once the attack runs; the factory
	// resolves the serving VM per scan, so post-attack scans land in the
	// nested guest automatically.
	var rk *core.Rootkit
	factory := func(string) (*detect.GuestAgent, error) {
		dst, _, err := c.Net.ResolveForward(vnet.Addr{Endpoint: "host", Port: 2222})
		if err != nil {
			return nil, err
		}
		vm, ok := c.Host.Hypervisor().FindByEndpoint(dst.Endpoint)
		if !ok {
			return nil, fmt.Errorf("no vm behind %s", dst)
		}
		agent := detect.NewGuestAgent(vm, agentPageOffset)
		if rk != nil {
			agent.OnLoad = rk.InterceptFilePushes(mirrorPageOffset)
		}
		return agent, nil
	}
	w := detect.NewWatchdog(d, []string{"guest0"}, factory)
	w.Start(scanPeriod)
	defer w.Stop()

	// Let one clean cycle complete, then strike.
	c.Eng.RunFor(scanPeriod + d.Wait*4)
	res.InfectedAt = c.Eng.Now()
	rk, err = c.InstallRootkit(core.InstallConfig{})
	if err != nil {
		return res, err
	}

	// Run until the alert lands (bounded).
	deadline := c.Eng.Now() + 20*scanPeriod + time.Hour
	for len(w.Alerts()) == 0 && c.Eng.Now() < deadline {
		c.Eng.RunFor(scanPeriod)
	}
	alerts := w.Alerts()
	if len(alerts) == 0 {
		return res, fmt.Errorf("watchdog never alerted")
	}
	res.AlertAt = alerts[0].At
	res.TimeToDetect = res.AlertAt - res.InfectedAt
	res.ScansRun = w.Scans()
	return res, nil
}

// Render draws the result.
func (r TimeToDetectResult) Render() string {
	t := report.Table{
		Title:   "Watchdog: time to detect under periodic scanning",
		Headers: []string{"scan period", "infected at", "alert at", "time to detect", "scans"},
	}
	t.AddRow(r.ScanPeriod.String(), r.InfectedAt.String(), r.AlertAt.String(),
		r.TimeToDetect.String(), fmt.Sprintf("%d", r.ScansRun))
	return t.Render()
}
