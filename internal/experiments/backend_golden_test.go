package experiments

import (
	"fmt"
	"testing"

	"cloudskulk/internal/hv"
)

// backendGoldenHashes extends the golden table with the backend
// dimension: SHA-256 of rendered artefacts per backend × seed (and, via
// the test, per worker count — the hash must not depend on Workers).
// Keys are "<backend>/<artefact>/seed=<n>".
//
// The kvm-i7-4790 rows are copied verbatim from goldenArtefactHashes:
// the default backend is the paper calibration the pre-refactor tree
// hardcoded, so its artefacts must hash to exactly the pre-refactor
// values (TestBackendGoldenMatrix cross-checks the two tables).
var backendGoldenHashes = map[string]string{
	"kvm-i7-4790/detect-infected/seed=1": "5edd9fd4428670bd1d605f715ac001f69ab4ba806a5fe786e452a604af1e77df",
	"kvm-i7-4790/detect-infected/seed=7": "4858e5278b275cd2690234c212519ccf0743dcbc4bb2053fafbe10f9066583eb",
	"kvm-i7-4790/fig4-migration/seed=1":  "d2b4225b19b753010a0c1ac2a9812652f5eeb70b1e4afebde9b4e4fb206f2440",
	"kvm-i7-4790/fig4-migration/seed=7":  "5df2845f8bdb85a0da01686af9e4b7acf1de510b7b25a3f3fc8944b3503cf45d",

	// The epyc fig4 rows equal the default's: migration timing is driven
	// by dirty rate and network, and the two profiles share noise and
	// zero-fraction — only exit/KSM economics differ, which fig4 never
	// exercises. Its detection rows diverge, proving the backend is
	// actually threaded through.
	"kvm-epyc-7702/detect-infected/seed=1": "2d6a709f2f7a55c44f314f787ac389c66c171afab76233a7eca54c7fbd501052",
	"kvm-epyc-7702/detect-infected/seed=7": "e4e3c16dc496274316947b4c9f1c1d3c72879e0ff980703fdb5f5202c2af0cee",
	"kvm-epyc-7702/fig4-migration/seed=1":  "d2b4225b19b753010a0c1ac2a9812652f5eeb70b1e4afebde9b4e4fb206f2440",
	"kvm-epyc-7702/fig4-migration/seed=7":  "5df2845f8bdb85a0da01686af9e4b7acf1de510b7b25a3f3fc8944b3503cf45d",

	// xen-haswell shares the default's dirty-rate/network path for fig4
	// only where noise and zero-fraction match — they don't (0.32 vs
	// 0.35, 0.011 vs 0.01), so all four rows diverge from the default's.
	"xen-haswell/detect-infected/seed=1": "fe8b0b0c71324eaf118d6cb185a3aa56d6ddb4ce57f1f2de03bc905be1a3f6ff",
	"xen-haswell/detect-infected/seed=7": "3fce34f213f5ba38b0a55bf9cb3de1d7f0fd7e2d92c1d15bbe6d342a83366363",
	"xen-haswell/fig4-migration/seed=1":  "52d0e0d4b45f944cf1d1997f1ce6003838e8a7d1b77a5e382306a4d4657ef38e",
	"xen-haswell/fig4-migration/seed=7":  "277bc1dbd4b35e23a4f2d24542c7568c0ef7357bd440a1ef0f2599779ac1da38",

	// whp-skylake diverges on every row: its noise (0.013) and
	// zero-fraction (0.37) differ from all the other profiles, so both
	// the migration path and the detection economics resample.
	"whp-skylake/detect-infected/seed=1": "9c83784d3376963a5c5b37be8bdea03274f15d75fe15290cef9d762b46a49353",
	"whp-skylake/detect-infected/seed=7": "728a74cccb2f87a517d0334aa089711547cf2f6c2aa0a143a31811731b9f605d",
	"whp-skylake/fig4-migration/seed=1":  "dd0f43abfbcf3ef8ddef1825635d4b9360f9e2628c03c6d841b2b78105898671",
	"whp-skylake/fig4-migration/seed=7":  "957731a4872faf9e9da5e274fab76538f8cad09956aacb359999a0c0e55539d9",

	"hvf-m2/detect-infected/seed=1": "34392d046bd38ee81cde44da7135fb866b8570785461518ae70ca329da86c2eb",
	"hvf-m2/detect-infected/seed=7": "049c9fc088cd0fd4592292d24ab1f3eab0d687049bcaa05a7c762241041284ad",
	"hvf-m2/fig4-migration/seed=1":  "e9c88b489a25d842699e264a4cdc6e916ca01df474e2719bee8244b4bac4d6ff",
	"hvf-m2/fig4-migration/seed=7":  "cdf8a42d8c7d830ea3e42aa2142ebdaa351c436677dbc4d26fa6838812c9f3b7",
}

// backendArtefacts renders the backend-sensitive artefact pair (the KSM
// timing detection and the migration theft) for one backend × seed ×
// worker count.
func backendArtefacts(t *testing.T, backend string, seed int64, workers int) map[string]string {
	t.Helper()
	o := TestOptions()
	o.Seed = seed
	o.Workers = workers
	o.Backend = backend
	key := func(name string) string { return fmt.Sprintf("%s/%s/seed=%d", backend, name, seed) }
	out := make(map[string]string)

	inf, err := Figure6DetectionInfected(o)
	if err != nil {
		t.Fatal(err)
	}
	out[key("detect-infected")] = sha(inf.Render())

	fig4, err := Figure4Migration(o)
	if err != nil {
		t.Fatal(err)
	}
	out[key("fig4-migration")] = sha(fig4.Render())
	return out
}

// TestBackendGoldenMatrix: every registered backend renders byte-identical
// artefacts for any worker count, each (backend, artefact, seed) cell
// hashes to its pinned value, and the default backend's cells equal the
// pre-refactor golden table entry for entry.
func TestBackendGoldenMatrix(t *testing.T) {
	for _, backend := range hv.Names() {
		for _, seed := range []int64{1, 7} {
			serial := backendArtefacts(t, backend, seed, 1)
			wide := backendArtefacts(t, backend, seed, 8)
			for name, h := range serial {
				if wide[name] != h {
					t.Errorf("%s: workers=8 hash %s != workers=1 hash %s (output depends on worker count)",
						name, wide[name], h)
				}
				want, pinned := backendGoldenHashes[name]
				if !pinned {
					t.Errorf("artefact %q missing from backendGoldenHashes", name)
					continue
				}
				if want == "" {
					t.Logf("CAPTURE %q: %q,", name, h)
					continue
				}
				if h != want {
					t.Errorf("artefact %s hash = %s, want %s", name, h, want)
				}
			}
		}
	}

	// The refactor invariant: the default backend IS the pre-refactor
	// tree. Its rows in this table must be copies of the legacy one.
	for _, seed := range []int64{1, 7} {
		for _, art := range []string{"detect-infected", "fig4-migration"} {
			legacy := goldenArtefactHashes[fmt.Sprintf("%s/seed=%d", art, seed)]
			pinned := backendGoldenHashes[fmt.Sprintf("%s/%s/seed=%d", hv.DefaultName, art, seed)]
			if legacy != pinned {
				t.Errorf("default backend row %s/seed=%d (%s) diverged from the pre-refactor golden (%s)",
					art, seed, pinned, legacy)
			}
		}
	}

	for name, want := range backendGoldenHashes {
		if want == "" {
			t.Errorf("golden hash for %s not captured — run with -v and paste the CAPTURE lines", name)
		}
	}
}
