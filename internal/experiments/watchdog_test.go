package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestTimeToDetect(t *testing.T) {
	o := TestOptions()
	period := 5 * time.Minute
	res, err := TimeToDetect(o, period)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeToDetect <= 0 {
		t.Fatalf("time to detect = %v", res.TimeToDetect)
	}
	// Detection lands within a couple of scan periods of infection (one
	// period of latency plus the protocol's own three merge windows).
	if res.TimeToDetect > 2*period+4*o.KSMWait {
		t.Fatalf("time to detect = %v, period %v", res.TimeToDetect, period)
	}
	if res.ScansRun < 2 {
		t.Fatalf("scans = %d (need at least one clean + one alerting)", res.ScansRun)
	}
	if !strings.Contains(res.Render(), "time to detect") {
		t.Fatal("render")
	}
}
