package experiments

import (
	"strings"
	"testing"
)

// TestMegaStormSmoke: the quick-scale sharded run provisions its full
// population, every deploy and migration arrival forks the golden
// template, the audit is exact, and tampering is caught across shard
// boundaries.
func TestMegaStormSmoke(t *testing.T) {
	o := TestOptions()
	cfg := QuickMegaStormConfig()
	r, err := MegaStorm(o, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := cfg.Shards * cfg.HostsPerShard * cfg.GuestsPerHost; r.Deployed != want || r.Guests != want {
		t.Fatalf("population %d deployed / %d after churn, want %d", r.Deployed, r.Guests, want)
	}
	if want := cfg.Shards * cfg.MigrationsPerShard; r.Migrations != want {
		t.Fatalf("migrations = %d, want %d", r.Migrations, want)
	}
	if want := uint64(r.Deployed + r.Migrations); r.ForkSpawns != want {
		t.Fatalf("fork spawns = %d, want %d (every deploy and arrival)", r.ForkSpawns, want)
	}
	if want := cfg.Shards * cfg.TampersPerShard; r.Tampered != want {
		t.Fatalf("tampered = %d, want %d", r.Tampered, want)
	}
	if r.MissedTampers != 0 || r.FalseFlags != 0 {
		t.Fatalf("audit not exact: %d missed, %d false flags", r.MissedTampers, r.FalseFlags)
	}
	if r.Flagged != r.Tampered {
		t.Fatalf("flagged %d != tampered %d", r.Flagged, r.Tampered)
	}
	// Every shard's guest 0 is tampered and then migrates: all of them
	// must be caught on their destination shard.
	if r.MigrantFlags != cfg.Shards {
		t.Fatalf("migrant flags = %d, want %d", r.MigrantFlags, cfg.Shards)
	}
	if r.DeltaPages == 0 || r.Rounds == 0 || r.Delivered < uint64(r.Migrations) {
		t.Fatalf("degenerate churn: %+v", r)
	}
	if !strings.Contains(r.Render(), "flags caught post-migration") {
		t.Fatal("render missing migrant-flag row")
	}
}

// TestMegaStormWorkerInvariance: the quick-scale megastorm artefact is
// byte-identical whether the shards advance serially or on 8 workers.
func TestMegaStormWorkerInvariance(t *testing.T) {
	render := func(workers int) string {
		o := TestOptions()
		o.Workers = workers
		r, err := MegaStorm(o, QuickMegaStormConfig())
		if err != nil {
			t.Fatal(err)
		}
		return r.Render()
	}
	serial := render(1)
	if wide := render(8); wide != serial {
		t.Errorf("artefact depends on worker count:\n--- serial ---\n%s\n--- wide ---\n%s", serial, wide)
	}
	if again := render(1); again != serial {
		t.Error("same seed replays a different artefact")
	}
	o := TestOptions()
	o.Seed = 99
	r, err := MegaStorm(o, QuickMegaStormConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Render() == serial {
		t.Error("different seeds produce identical artefacts")
	}
}

// megastormGoldenHashes pins the full-scale artefact — 102,400 guests on
// 1,024 hosts — per seed. Capture workflow matches golden_test.go: leave
// a value empty, run with -v, paste the CAPTURE line.
var megastormGoldenHashes = map[string]string{
	"megastorm/seed=1": "0508d1ebc507eb865e1b31636f17f9a5209fe19f6b1bbd237513d020c8b0761b",
	"megastorm/seed=7": "617d17af82ac15b453dd6facd4d2c2981e33d7806e3be2a769d2824295ce4b19",
}

// TestMegaStormGoldenMatrix: the full DefaultMegaStormConfig run hashes
// to the pinned value for each seed at both worker counts.
func TestMegaStormGoldenMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale megastorm matrix skipped in -short")
	}
	for _, seed := range []int64{1, 7} {
		for _, workers := range []int{1, 8} {
			o := TestOptions()
			o.Seed = seed
			o.Workers = workers
			r, err := MegaStorm(o, DefaultMegaStormConfig())
			if err != nil {
				t.Fatal(err)
			}
			name := "megastorm/seed=" + map[int64]string{1: "1", 7: "7"}[seed]
			h := sha(r.Render())
			want := megastormGoldenHashes[name]
			if want == "" {
				t.Logf("CAPTURE %q: %q,", name, h)
				continue
			}
			if h != want {
				t.Errorf("seed=%d workers=%d megastorm hash = %s, want %s", seed, workers, h, want)
			}
		}
	}
	for name, want := range megastormGoldenHashes {
		if want == "" {
			t.Errorf("golden hash for %s not captured — run with -v and paste the CAPTURE lines", name)
		}
	}
}
