package experiments

import (
	"strings"
	"testing"

	"cloudskulk/internal/detect"
)

func TestRemediationDrill(t *testing.T) {
	o := TestOptions()
	res, err := RemediationDrill(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.PreVerdict != detect.VerdictNested {
		t.Fatalf("pre verdict = %v", res.PreVerdict)
	}
	if !res.ManagerSawShutOff {
		t.Fatal("management-plane inconsistency not observed")
	}
	if res.KilledVM != "guestX" {
		t.Fatalf("killed %q, want the RITM", res.KilledVM)
	}
	if res.PostVerdict != detect.VerdictClean {
		t.Fatalf("post verdict = %v", res.PostVerdict)
	}
	if res.Downtime <= 0 {
		t.Fatalf("downtime = %v", res.Downtime)
	}
	out := res.Render()
	for _, want := range []string{"guestX", "re-check", "clean"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
