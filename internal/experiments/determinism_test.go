package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"cloudskulk/internal/runner"
	"cloudskulk/internal/telemetry"
)

// TestSweepsWorkerCountInvariant: rendered experiment output is
// byte-identical whether a sweep runs serially or sharded across eight
// workers — the runner only reschedules cells, it never reseeds them.
func TestSweepsWorkerCountInvariant(t *testing.T) {
	renderers := []struct {
		name string
		run  func(o Options) (string, error)
	}{
		{"fig2", func(o Options) (string, error) {
			r, err := Figure2KernelCompile(o)
			return r.Render(), err
		}},
		{"fig3", func(o Options) (string, error) {
			r, err := Figure3Netperf(o)
			return r.Render(), err
		}},
		{"table2", func(o Options) (string, error) {
			return Table2Arithmetic(o).Render(), nil
		}},
		{"fig4", func(o Options) (string, error) {
			r, err := Figure4Migration(o)
			return r.Render(), err
		}},
		{"armsrace", func(o Options) (string, error) {
			r, err := ArmsRaceSyncCountermeasure(o)
			return r.Render(), err
		}},
		{"ablate-gap", func(o Options) (string, error) {
			r, err := AblationTimingGap(o, []float64{4, 1.5})
			return r.Render(), err
		}},
		{"ablate-ksm", func(o Options) (string, error) {
			r, err := AblationKSMWait(o, []time.Duration{2 * time.Second, 10 * time.Second})
			return r.Render(), err
		}},
		{"fleetstorm", func(o Options) (string, error) {
			r, err := FleetMigrationStorm(o, []int{4}, []int{1, 2}, []float64{0.5})
			return r.Render(), err
		}},
	}
	for _, tc := range renderers {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			serial := TestOptions()
			serial.Workers = 1
			wide := TestOptions()
			wide.Workers = 8
			got1, err := tc.run(serial)
			if err != nil {
				t.Fatalf("workers=1: %v", err)
			}
			got8, err := tc.run(wide)
			if err != nil {
				t.Fatalf("workers=8: %v", err)
			}
			if got1 != got8 {
				t.Fatalf("output depends on worker count:\n-- workers=1 --\n%s\n-- workers=8 --\n%s", got1, got8)
			}
		})
	}
}

// TestSweepProgressReporting: OnProgress observes every cell of a sweep
// and finishes at done == total.
func TestSweepProgressReporting(t *testing.T) {
	o := TestOptions()
	o.Workers = 4
	var reports int
	var last runner.Progress
	o.OnProgress = func(p runner.Progress) {
		reports++
		last = p
	}
	if _, err := Figure3Netperf(o); err != nil {
		t.Fatal(err)
	}
	wantCells := 3 * o.Runs // levels x runs
	if reports != wantCells {
		t.Fatalf("reports = %d, want %d", reports, wantCells)
	}
	if last.Done != last.Total || last.Total != wantCells {
		t.Fatalf("final progress = %+v, want done == total == %d", last, wantCells)
	}
}

// exportBytes renders the registry's two export formats back to back, so
// a single comparison covers JSON-lines and Prometheus text at once.
func exportBytes(t *testing.T, reg *telemetry.Registry) string {
	t.Helper()
	var b bytes.Buffer
	if err := reg.WriteJSONLines(&b); err != nil {
		t.Fatal(err)
	}
	b.WriteString(reg.PromText())
	return b.String()
}

// TestTelemetryExportsDeterministic: the same seed yields byte-identical
// JSON-lines and Prometheus-text exports across independent runs, and the
// worker count does not leak into the metrics even though all cells share
// one registry (counters are order-independent atomic sums).
func TestTelemetryExportsDeterministic(t *testing.T) {
	run := func(workers int) string {
		o := TestOptions()
		o.Workers = workers
		o.Telemetry = telemetry.NewRegistry()
		if _, err := Figure4Migration(o); err != nil {
			t.Fatal(err)
		}
		if _, err := FleetMigrationStorm(o, []int{4}, []int{2}, []float64{0.5}); err != nil {
			t.Fatal(err)
		}
		return exportBytes(t, o.Telemetry)
	}

	serial := run(1)
	again := run(1)
	if serial != again {
		t.Fatalf("same-seed exports differ between runs:\n-- first --\n%s\n-- second --\n%s", serial, again)
	}
	wide := run(8)
	if serial != wide {
		t.Fatalf("exports depend on worker count:\n-- workers=1 --\n%s\n-- workers=8 --\n%s", serial, wide)
	}
	if !strings.Contains(serial, "migrate_completed_total") ||
		!strings.Contains(serial, "fleet_migrations_total") {
		t.Fatalf("expected migration families in export:\n%s", serial)
	}
}

// TestTelemetryDoesNotPerturbResults: attaching a registry must never
// change what an experiment measures — instrumentation is a pure side
// channel off the simulation.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	bare := TestOptions()
	r1, err := Figure4Migration(bare)
	if err != nil {
		t.Fatal(err)
	}
	inst := TestOptions()
	inst.Telemetry = telemetry.NewRegistry()
	r2, err := Figure4Migration(inst)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Render() != r2.Render() {
		t.Fatalf("telemetry changed experiment output:\n-- bare --\n%s\n-- instrumented --\n%s",
			r1.Render(), r2.Render())
	}
}
