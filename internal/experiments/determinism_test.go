package experiments

import (
	"testing"
	"time"

	"cloudskulk/internal/runner"
)

// TestSweepsWorkerCountInvariant: rendered experiment output is
// byte-identical whether a sweep runs serially or sharded across eight
// workers — the runner only reschedules cells, it never reseeds them.
func TestSweepsWorkerCountInvariant(t *testing.T) {
	renderers := []struct {
		name string
		run  func(o Options) (string, error)
	}{
		{"fig2", func(o Options) (string, error) {
			r, err := Figure2KernelCompile(o)
			return r.Render(), err
		}},
		{"fig3", func(o Options) (string, error) {
			r, err := Figure3Netperf(o)
			return r.Render(), err
		}},
		{"table2", func(o Options) (string, error) {
			return Table2Arithmetic(o).Render(), nil
		}},
		{"fig4", func(o Options) (string, error) {
			r, err := Figure4Migration(o)
			return r.Render(), err
		}},
		{"armsrace", func(o Options) (string, error) {
			r, err := ArmsRaceSyncCountermeasure(o)
			return r.Render(), err
		}},
		{"ablate-gap", func(o Options) (string, error) {
			r, err := AblationTimingGap(o, []float64{4, 1.5})
			return r.Render(), err
		}},
		{"ablate-ksm", func(o Options) (string, error) {
			r, err := AblationKSMWait(o, []time.Duration{2 * time.Second, 10 * time.Second})
			return r.Render(), err
		}},
		{"fleetstorm", func(o Options) (string, error) {
			r, err := FleetMigrationStorm(o, []int{4}, []int{1, 2}, []float64{0.5})
			return r.Render(), err
		}},
	}
	for _, tc := range renderers {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			serial := TestOptions()
			serial.Workers = 1
			wide := TestOptions()
			wide.Workers = 8
			got1, err := tc.run(serial)
			if err != nil {
				t.Fatalf("workers=1: %v", err)
			}
			got8, err := tc.run(wide)
			if err != nil {
				t.Fatalf("workers=8: %v", err)
			}
			if got1 != got8 {
				t.Fatalf("output depends on worker count:\n-- workers=1 --\n%s\n-- workers=8 --\n%s", got1, got8)
			}
		})
	}
}

// TestSweepProgressReporting: OnProgress observes every cell of a sweep
// and finishes at done == total.
func TestSweepProgressReporting(t *testing.T) {
	o := TestOptions()
	o.Workers = 4
	var reports int
	var last runner.Progress
	o.OnProgress = func(p runner.Progress) {
		reports++
		last = p
	}
	if _, err := Figure3Netperf(o); err != nil {
		t.Fatal(err)
	}
	wantCells := 3 * o.Runs // levels x runs
	if reports != wantCells {
		t.Fatalf("reports = %d, want %d", reports, wantCells)
	}
	if last.Done != last.Total || last.Total != wantCells {
		t.Fatalf("final progress = %+v, want done == total == %d", last, wantCells)
	}
}
