package experiments

import (
	"fmt"
	"time"

	"cloudskulk/internal/core"
	"cloudskulk/internal/detect"
	"cloudskulk/internal/kvm"
	"cloudskulk/internal/migrate"
	"cloudskulk/internal/qemu"
	"cloudskulk/internal/report"
	"cloudskulk/internal/sim"
	"cloudskulk/internal/virtman"
	"cloudskulk/internal/vnet"
)

// RemediationResult records the full operational loop: the attack, the
// detection, the operator's response, and the post-remediation re-check.
type RemediationResult struct {
	// PreVerdict is the detector's finding on the compromised host.
	PreVerdict detect.Verdict
	// ManagerSawShutOff: whether the management plane (which the
	// attacker bypassed) exposed the tell-tale "guest0 shut off while a
	// guest0 process runs" inconsistency.
	ManagerSawShutOff bool
	// KilledVM names the VM the operator destroyed (the disguised RITM).
	KilledVM string
	// PostVerdict is the re-check after rebuilding the tenant.
	PostVerdict detect.Verdict
	// Downtime is the tenant's outage during remediation.
	Downtime time.Duration
}

// RemediationDrill plays out the defender's runbook end to end:
//
//  1. a managed tenant is CloudSkulked (the attacker drives QEMU directly,
//     bypassing the management plane — as the paper's attacker does);
//  2. the dedup detector flags the tenant;
//  3. the operator traces the tenant's service port to the actual VM
//     serving it (the disguised RITM), destroys the whole nested stack,
//     and rebuilds the tenant from its managed definition;
//  4. the detector re-checks the rebuilt tenant.
func RemediationDrill(o Options) (RemediationResult, error) {
	o = o.withDefaults()
	var res RemediationResult

	backend, err := o.resolveBackend()
	if err != nil {
		return res, err
	}
	eng := sim.NewEngine(o.Seed)
	network := vnet.New(eng)
	host, err := kvm.NewHostWithBackend(eng, network, "host", backend)
	if err != nil {
		return res, err
	}
	me := migrate.NewEngine(eng, network)
	host.SetMigrationService(me)
	mgr := virtman.NewManager(host)

	def := virtman.DomainDef{
		Name:        "guest0",
		MemoryMB:    o.GuestMemMB,
		VCPUs:       1,
		KVM:         true,
		MonitorPort: 5555,
		Interfaces: []virtman.IfaceDef{{
			Model:    "virtio-net-pci",
			Forwards: []virtman.PortPair{{Host: 2222, Guest: 22}},
		}},
	}
	if _, err := mgr.Define(def); err != nil {
		return res, err
	}
	if err := mgr.Start("guest0"); err != nil {
		return res, err
	}

	// The attack (management plane bypassed).
	icfg := core.DefaultInstallConfig()
	icfg.TargetName = "guest0"
	rk, err := core.Installer{Host: host, Migration: me}.Install(icfg)
	if err != nil {
		return res, err
	}

	// Detection.
	host.KSM().Start()
	d := detect.NewDedupDetector(host)
	d.Pages = o.DetectPages
	d.Wait = o.KSMWait
	agent := detect.NewGuestAgent(rk.Victim, agentPageOffset)
	agent.OnLoad = rk.InterceptFilePushes(mirrorPageOffset)
	verdict, _, err := d.Run(agent)
	if err != nil {
		return res, err
	}
	res.PreVerdict = verdict

	// The management plane's view is already inconsistent: libvirt lost
	// its domain (the attacker killed the original QEMU), yet ps shows a
	// "guest0" process.
	if dom, ok := mgr.Domain("guest0"); ok {
		res.ManagerSawShutOff = dom.State() == virtman.StateDefined &&
			len(host.OS().FindByCommand("-name guest0")) > 0
	}

	// Response: trace the service port to the actual serving VM and
	// destroy that whole stack.
	outageStart := eng.Now()
	dst, _, err := network.ResolveForward(vnet.Addr{Endpoint: "host", Port: 2222})
	if err != nil {
		return res, err
	}
	serving, ok := host.Hypervisor().FindByEndpoint(dst.Endpoint)
	if !ok {
		return res, fmt.Errorf("remediation: nothing serves %s", dst)
	}
	// The forwarding chain's first hop from the host is the L0-level VM
	// to kill; for the CloudSkulk chain that is the RITM (the nested
	// victim dies with it).
	var l0vm *qemu.VM
	for _, vm := range host.Hypervisor().VMs() {
		if vm.Endpoint() == dst.Endpoint {
			l0vm = vm
			break
		}
	}
	if l0vm == nil {
		// Serving VM is nested: find its L0 carrier by walking the
		// forward chain's first hop.
		_, hops, err := network.ResolveForward(vnet.Addr{Endpoint: "host", Port: 2222})
		if err != nil || len(hops) < 2 {
			return res, fmt.Errorf("remediation: cannot locate carrier of %s", serving.Name())
		}
		for _, vm := range host.Hypervisor().VMs() {
			if vm.Endpoint() == hops[1] {
				l0vm = vm
				break
			}
		}
	}
	if l0vm == nil {
		return res, fmt.Errorf("remediation: no L0 carrier found")
	}
	res.KilledVM = l0vm.Name()
	if err := host.Hypervisor().Kill(l0vm.Name()); err != nil {
		return res, err
	}

	// Rebuild the tenant from its managed definition and re-check.
	if err := mgr.Start("guest0"); err != nil {
		return res, fmt.Errorf("remediation: rebuild: %w", err)
	}
	res.Downtime = eng.Now() - outageStart
	fresh, _ := mgr.Domain("guest0")
	agent2 := detect.NewGuestAgent(fresh.VM(), agentPageOffset)
	verdict2, _, err := d.Run(agent2)
	if err != nil {
		return res, err
	}
	res.PostVerdict = verdict2
	return res, nil
}

// Render draws the drill outcome.
func (r RemediationResult) Render() string {
	t := report.Table{
		Title:   "Remediation drill: detect -> respond -> verify",
		Headers: []string{"step", "outcome"},
	}
	t.AddRow("detection on compromised tenant", r.PreVerdict.String())
	t.AddRow("management-plane inconsistency seen", fmt.Sprintf("%v", r.ManagerSawShutOff))
	t.AddRow("destroyed VM (disguised RITM)", r.KilledVM)
	t.AddRow("tenant outage", r.Downtime.String())
	t.AddRow("re-check on rebuilt tenant", r.PostVerdict.String())
	return t.Render()
}
