package experiments

import (
	"fmt"

	"cloudskulk/internal/cpu"
	"cloudskulk/internal/cvedata"
	"cloudskulk/internal/report"
	"cloudskulk/internal/workload"
)

// Table1Result is the VM-escape CVE inventory.
type Table1Result struct {
	Years       []int
	Hypervisors []cvedata.Hypervisor
}

// Table1CVE reproduces Table I from the embedded dataset.
func Table1CVE() Table1Result {
	return Table1Result{
		Years:       cvedata.Years(),
		Hypervisors: cvedata.Hypervisors(),
	}
}

// Render draws Table I (counts per cell plus the totals row, as in the
// paper; the full CVE identifiers are available via cvedata.IDs).
func (r Table1Result) Render() string {
	t := report.Table{
		Title:   "TABLE I: VM escape CVE vulnerabilities reported between 2015 and 2020",
		Headers: []string{"Year"},
	}
	for _, hv := range r.Hypervisors {
		t.Headers = append(t.Headers, string(hv))
	}
	for _, y := range r.Years {
		row := []string{fmt.Sprintf("%d", y)}
		for _, hv := range r.Hypervisors {
			row = append(row, fmt.Sprintf("%d", cvedata.Count(y, hv)))
		}
		t.AddRow(row...)
	}
	totals := []string{"Total"}
	for _, hv := range r.Hypervisors {
		totals = append(totals, fmt.Sprintf("%d", cvedata.TotalFor(hv)))
	}
	t.AddRow(totals...)
	return t.Render()
}

// RenderFull draws Table I with the individual CVE identifiers in each
// cell, matching the paper's presentation.
func (r Table1Result) RenderFull() string {
	t := report.Table{
		Title:   "TABLE I: VM escape CVE vulnerabilities reported between 2015 and 2020 (full)",
		Headers: []string{"Year"},
	}
	for _, hv := range r.Hypervisors {
		t.Headers = append(t.Headers, string(hv))
	}
	for _, y := range r.Years {
		// Rows expand to the tallest cell in the year.
		cells := make([][]string, len(r.Hypervisors))
		height := 1
		for i, hv := range r.Hypervisors {
			cells[i] = cvedata.IDs(y, hv)
			if len(cells[i]) > height {
				height = len(cells[i])
			}
		}
		for line := 0; line < height; line++ {
			row := make([]string, 0, len(r.Hypervisors)+1)
			if line == 0 {
				row = append(row, fmt.Sprintf("%d", y))
			} else {
				row = append(row, "")
			}
			for i := range r.Hypervisors {
				if line < len(cells[i]) {
					row = append(row, cells[i][line])
				} else {
					row = append(row, "")
				}
			}
			t.AddRow(row...)
		}
	}
	totals := []string{"Total"}
	for _, hv := range r.Hypervisors {
		totals = append(totals, fmt.Sprintf("%d", cvedata.TotalFor(hv)))
	}
	t.AddRow(totals...)
	return t.Render()
}

// AblationExitMultiplierResult sweeps the Turtles exit-multiplication
// factor and reports the L2 pipe latency it produces — the knob the whole
// Table III L2 column hangs on.
type AblationExitMultiplierResult struct {
	Multipliers []int
	PipeL2Us    []float64
}

// AblationExitMultiplier sweeps the nested exit multiplier.
func AblationExitMultiplier(o Options, multipliers []int) AblationExitMultiplierResult {
	o = o.withDefaults()
	var res AblationExitMultiplierResult
	pipe := workload.ProcessOps()[3] // pipe latency
	for _, m := range multipliers {
		model := o.mustBackend().Profile.CPU
		model.ExitMultiplier = m
		cost := model.Cost(pipe, cpu.L2)
		res.Multipliers = append(res.Multipliers, m)
		res.PipeL2Us = append(res.PipeL2Us, cost.Microseconds())
	}
	return res
}

// Render draws the sweep against the paper's measured 65.49 µs.
func (r AblationExitMultiplierResult) Render() string {
	t := report.Table{
		Title:   "Ablation: L2 pipe latency vs nested exit multiplier (paper: 65.49 µs)",
		Headers: []string{"multiplier", "pipe latency L2 (µs)"},
	}
	for i := range r.Multipliers {
		t.AddRow(fmt.Sprintf("%d", r.Multipliers[i]), report.F2(r.PipeL2Us[i]))
	}
	return t.Render()
}
