package experiments

import (
	"fmt"
	"time"

	"cloudskulk/internal/core"
	"cloudskulk/internal/detect"
	"cloudskulk/internal/report"
	"cloudskulk/internal/runner"
)

// This file makes the paper's §VI-D discussion — "can the attacker evade
// by synchronizing L1's copy when L2's changes?" — a concrete experiment.
//
// Attacker options:
//   - no synchronization (the baseline CloudSkulk);
//   - write-track only the regions it has *seen* (intercepted file
//     pushes);
//   - write-track the victim's entire RAM.
//
// Detector options:
//   - the pushed-file probe (the paper's demonstrated protocol);
//   - the image probe: a random window of vendor-provisioned pages, which
//     the attacker cannot predict.
//
// The expected outcome is the paper's argument in data: partial tracking
// evades only the probe it happens to cover; full tracking evades both but
// costs one trap per guest write across all of RAM and plants a hook a
// hypervisor-integrity check can see.

// ArmsRaceAttacker enumerates the attacker's §VI-D options.
type ArmsRaceAttacker string

// Attacker variants.
const (
	AttackerNoSync    ArmsRaceAttacker = "no sync"
	AttackerSyncPush  ArmsRaceAttacker = "track pushed files"
	AttackerSyncAllOf ArmsRaceAttacker = "track all guest RAM"
)

// ArmsRaceProbe enumerates the detector's options.
type ArmsRaceProbe string

// Probe variants.
const (
	ProbePushedFile ArmsRaceProbe = "pushed-file probe"
	ProbeImage      ArmsRaceProbe = "image probe"
)

// ArmsRaceRow is one (attacker, probe) cell.
type ArmsRaceRow struct {
	Attacker ArmsRaceAttacker
	Probe    ArmsRaceProbe
	Verdict  detect.Verdict
	// Traps is how many guest writes the attacker's tracker intercepted
	// during the detection run.
	Traps uint64
	// TrapOverhead is the guest time those traps cost.
	TrapOverhead time.Duration
	// HookVisible reports whether a hypervisor-integrity check of the
	// guest's memory management would see the attacker's modification.
	HookVisible bool
}

// ArmsRaceResult is the full matrix.
type ArmsRaceResult struct {
	Rows []ArmsRaceRow
}

// ArmsRaceSyncCountermeasure runs the six-cell matrix, sharding the cells
// across the worker pool; each cell's seed depends only on its grid
// position, so the matrix is independent of Options.Workers.
func ArmsRaceSyncCountermeasure(o Options) (ArmsRaceResult, error) {
	o = o.withDefaults()
	attackers := []ArmsRaceAttacker{AttackerNoSync, AttackerSyncPush, AttackerSyncAllOf}
	probes := []ArmsRaceProbe{ProbePushedFile, ProbeImage}
	rows, err := runner.Map(len(attackers)*len(probes), o.runnerOptions(), func(i int) (ArmsRaceRow, error) {
		attacker := attackers[i/len(probes)]
		probe := probes[i%len(probes)]
		row, err := armsRaceCell(perRunSeed(o, "armsrace", i+1), o, attacker, probe)
		if err != nil {
			return ArmsRaceRow{}, fmt.Errorf("arms race %s/%s: %w", attacker, probe, err)
		}
		return row, nil
	})
	if err != nil {
		return ArmsRaceResult{}, err
	}
	return ArmsRaceResult{Rows: rows}, nil
}

func armsRaceCell(seed int64, o Options, attacker ArmsRaceAttacker, probe ArmsRaceProbe) (ArmsRaceRow, error) {
	row := ArmsRaceRow{Attacker: attacker, Probe: probe}
	c, err := NewCloud(seed, WithGuestMemMB(o.GuestMemMB), WithTelemetry(o.Telemetry), WithBackend(o.Backend))
	if err != nil {
		return row, err
	}
	rk, err := c.InstallRootkit(core.InstallConfig{})
	if err != nil {
		return row, err
	}
	// The attacker always impersonates the stock image (GuestX runs the
	// same OS, so the same vendor content sits in its memory).
	if err := rk.MirrorRange(c.VendorImageAt, c.VendorImage.NumPages()); err != nil {
		return row, err
	}
	c.Host.KSM().Start()

	d := detect.NewDedupDetector(c.Host)
	d.Pages = o.DetectPages
	d.Wait = o.KSMWait
	agent := detect.NewGuestAgent(rk.Victim, agentPageOffset)

	var sync *core.WriteTrackingSync
	switch attacker {
	case AttackerSyncPush:
		// Mirror observed pushes, and track exactly the region they
		// land in (the attacker saw the push arrive there).
		agent.OnLoad = rk.InterceptFilePushes(mirrorPageOffset)
		sync = rk.StartWriteTrackingSync(agentPageOffset, o.DetectPages, mirrorPageOffset)
	case AttackerSyncAllOf:
		// Full tracking maintains one live, whole-RAM mirror; no
		// separate (and staleness-prone) push copies.
		sync = rk.StartWriteTrackingSync(0, -1, 0)
	default:
		agent.OnLoad = rk.InterceptFilePushes(mirrorPageOffset)
	}
	if sync != nil {
		defer sync.Stop()
	}

	var verdict detect.Verdict
	switch probe {
	case ProbeImage:
		verdict, _, err = d.RunImageProbe(agent, c.VendorImage, c.VendorImageAt)
	default:
		verdict, _, err = d.Run(agent)
	}
	if err != nil {
		return row, err
	}
	row.Verdict = verdict
	if sync != nil {
		row.Traps = sync.Traps()
		row.TrapOverhead = sync.TrapOverhead(c.Host.Backend().Profile.CPU.NestedFaultCost.Duration())
	}
	row.HookVisible = rk.Victim.RAM().HasWriteHook()
	return row, nil
}

// Render draws the matrix.
func (r ArmsRaceResult) Render() string {
	t := report.Table{
		Title:   "Arms race: attacker synchronization vs detector probe choice (paper §VI-D)",
		Headers: []string{"attacker", "probe", "verdict", "traps", "trap cost", "hook visible"},
	}
	for _, row := range r.Rows {
		t.AddRow(string(row.Attacker), string(row.Probe), row.Verdict.String(),
			fmt.Sprintf("%d", row.Traps), row.TrapOverhead.String(),
			fmt.Sprintf("%v", row.HookVisible))
	}
	return t.Render()
}
