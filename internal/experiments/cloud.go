// Package experiments reproduces every table and figure of the paper's
// evaluation: Table I (CVE inventory), Fig. 2 (kernel compile), Fig. 3
// (netperf), Fig. 4 (live-migration timing), Tables II-IV (lmbench), and
// Figs. 5-6 (detection timing), plus the ablation sweeps DESIGN.md §4
// calls out. Each experiment builds its own seeded simulation, so results
// are deterministic per (seed, options).
//
// Sweeps decompose into independent (config × run) cells, each owning its
// own sim.Engine seeded by perRunSeed, and execute on the internal/runner
// worker pool: Options.Workers bounds the parallelism and the output is
// byte-identical to a serial run regardless of worker count.
package experiments

import (
	"time"

	"cloudskulk/internal/core"
	"cloudskulk/internal/hv"
	"cloudskulk/internal/kvm"
	"cloudskulk/internal/mem"
	"cloudskulk/internal/migrate"
	"cloudskulk/internal/qemu"
	"cloudskulk/internal/runner"
	"cloudskulk/internal/sim"
	"cloudskulk/internal/telemetry"
	"cloudskulk/internal/vnet"
	"cloudskulk/internal/workload"

	// Make every built-in backend resolvable by name for any consumer of
	// the experiments package.
	_ "cloudskulk/internal/hv/backends"
)

// Options scales the experiments. Defaults reproduce the paper's testbed;
// tests shrink memory and rep counts for speed.
type Options struct {
	// Seed drives all randomness.
	Seed int64
	// GuestMemMB is the victim VM size (paper: 1024).
	GuestMemMB int64
	// Runs is the per-cell repetition count (paper: 5).
	Runs int
	// CompileUnits is the kernel-compile size (paper-calibrated: 2000).
	CompileUnits int
	// LmbenchReps is the per-op repetition count for Tables II-IV.
	LmbenchReps int
	// DetectPages is the probe-file size for Figs. 5-6 (paper: 100).
	DetectPages int
	// KSMWait is the detector's merge window.
	KSMWait time.Duration
	// Workers bounds the sweep worker pool; <= 0 uses GOMAXPROCS. Cell
	// results are independent of this value — it only changes wall-clock
	// time.
	Workers int
	// OnProgress, when non-nil, receives live sweep progress (cells
	// done/total, rate, ETA) as cells complete.
	OnProgress func(runner.Progress)
	// Telemetry, when non-nil, is wired into every testbed an experiment
	// builds: all clouds and fleets share this one registry. Counters and
	// histograms are order-independent atomic sums, so exports stay
	// byte-identical for any Workers value.
	Telemetry *telemetry.Registry
	// Backend names the registered hv backend (cost profile) every testbed
	// is built on. Empty selects hv.DefaultName, the paper's i7-4790
	// calibration. Unknown names surface hv.ErrUnknownBackend from the
	// experiment entry points.
	Backend string
}

// DefaultOptions reproduces the paper's configuration.
func DefaultOptions() Options {
	return Options{
		Seed:         1,
		GuestMemMB:   1024,
		Runs:         5,
		CompileUnits: 2000,
		LmbenchReps:  10000,
		DetectPages:  100,
		KSMWait:      15 * time.Second,
	}
}

// TestOptions returns a scaled-down configuration for fast tests.
func TestOptions() Options {
	return Options{
		Seed:         1,
		GuestMemMB:   32,
		Runs:         3,
		CompileUnits: 120,
		LmbenchReps:  2000,
		DetectPages:  50,
		KSMWait:      10 * time.Second,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.GuestMemMB <= 0 {
		o.GuestMemMB = d.GuestMemMB
	}
	if o.Runs <= 0 {
		o.Runs = d.Runs
	}
	if o.CompileUnits <= 0 {
		o.CompileUnits = d.CompileUnits
	}
	if o.LmbenchReps <= 0 {
		o.LmbenchReps = d.LmbenchReps
	}
	if o.DetectPages <= 0 {
		o.DetectPages = d.DetectPages
	}
	if o.KSMWait <= 0 {
		o.KSMWait = d.KSMWait
	}
	return o
}

// runnerOptions projects the sweep-execution knobs for internal/runner.
func (o Options) runnerOptions() runner.Options {
	return runner.Options{Workers: o.Workers, OnProgress: o.OnProgress}
}

// resolveBackend maps Options.Backend to a registered hv backend,
// surfacing hv.ErrUnknownBackend for names nobody registered.
func (o Options) resolveBackend() (hv.Backend, error) {
	return hv.Lookup(o.Backend)
}

// mustBackend is resolveBackend for the table generators that have no
// error return; an unknown name panics with the same typed error text.
// cmd/experiments validates -backend up front, so this only fires on
// misuse of the library API.
func (o Options) mustBackend() hv.Backend {
	b, err := hv.Lookup(o.Backend)
	if err != nil {
		panic(err)
	}
	return b
}

// Cloud is one simulated testbed: a host with a migration engine and a
// victim VM, mirroring the paper's Fedora 22 / QEMU 2.9 machine.
type Cloud struct {
	Eng       *sim.Engine
	Net       *vnet.Network
	Host      *kvm.Host
	Migration *migrate.Engine
	Victim    *qemu.VM

	// Background is the victim's background activity generator when the
	// cloud was built with WithWorkloadProfile; nil otherwise.
	Background *workload.Background

	// VendorImage records the content the cloud vendor provisioned into
	// the guest (OS files resident in memory), and VendorImageAt where
	// it lives. The image-probe detection variant draws its probes from
	// here.
	VendorImage   *mem.File
	VendorImageAt int

	// Telemetry is the metrics registry wired through the stack when the
	// cloud was built with WithTelemetry; nil otherwise. Spans is the
	// matching per-cloud span tracer (migrations render as trees).
	Telemetry *telemetry.Registry
	Spans     *telemetry.SpanTracer
}

// cloudConfig is the option state NewCloud builds from.
type cloudConfig struct {
	guestMemMB  int64
	monitorPort int
	ksmStarted  bool
	profile     *workload.Profile
	tele        *telemetry.Registry
	backend     string
}

// CloudOption configures NewCloud.
type CloudOption func(*cloudConfig)

// WithGuestMemMB sets the victim VM's memory size (default 1024, the
// paper's 1 GiB guest).
func WithGuestMemMB(mb int64) CloudOption {
	return func(c *cloudConfig) { c.guestMemMB = mb }
}

// WithMonitorPort moves the victim's QEMU monitor off the default 5555.
func WithMonitorPort(port int) CloudOption {
	return func(c *cloudConfig) { c.monitorPort = port }
}

// WithKSMStarted starts the host's KSM daemon as part of testbed
// construction, instead of leaving it stopped for the caller.
func WithKSMStarted() CloudOption {
	return func(c *cloudConfig) { c.ksmStarted = true }
}

// WithWorkloadProfile attaches a background guest-activity generator to
// the victim; the handle is exposed as Cloud.Background.
func WithWorkloadProfile(p workload.Profile) CloudOption {
	return func(c *cloudConfig) { c.profile = &p }
}

// WithTelemetry wires the registry into the testbed's host, network,
// migration engine, and every VM it creates, and attaches a span tracer
// to the migration engine. A nil registry is a no-op, so callers can pass
// Options.Telemetry through unconditionally.
func WithTelemetry(reg *telemetry.Registry) CloudOption {
	return func(c *cloudConfig) { c.tele = reg }
}

// WithBackend builds the testbed's host on the named hv backend (cost
// profile). The empty string selects hv.DefaultName; unknown names make
// NewCloud return hv.ErrUnknownBackend.
func WithBackend(name string) CloudOption {
	return func(c *cloudConfig) { c.backend = name }
}

// NewCloud builds a testbed with a running victim VM named "guest0"
// (SSH forwarded on 2222, monitor on 5555 unless WithMonitorPort) and an
// idle co-tenant. The zero-option call reproduces the paper's testbed
// with a 1 GiB victim; the KSM daemon is created stopped unless
// WithKSMStarted.
func NewCloud(seed int64, opts ...CloudOption) (*Cloud, error) {
	cc := cloudConfig{guestMemMB: 1024, monitorPort: 5555}
	for _, opt := range opts {
		opt(&cc)
	}

	backend, err := hv.Lookup(cc.backend)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine(seed)
	network := vnet.New(eng)
	host, err := kvm.NewHostWithBackend(eng, network, "host", backend)
	if err != nil {
		return nil, err
	}
	me := migrate.NewEngine(eng, network)
	host.SetMigrationService(me)

	var spans *telemetry.SpanTracer
	if cc.tele != nil {
		// Before CreateVM, so guest0 (and its vCPU) inherits the registry.
		host.SetTelemetry(cc.tele)
		network.SetTelemetry(cc.tele)
		me.SetTelemetry(cc.tele)
		spans = telemetry.NewSpanTracer(eng)
		me.SetSpans(spans)
	}

	cfg := qemu.DefaultConfig("guest0")
	cfg.MemoryMB = cc.guestMemMB
	cfg.MonitorPort = cc.monitorPort
	cfg.NetDevs[0].HostFwds = []qemu.FwdRule{{HostPort: 2222, GuestPort: 22}}
	victim, err := host.Hypervisor().CreateVM(cfg)
	if err != nil {
		return nil, err
	}
	if err := host.Hypervisor().Launch("guest0"); err != nil {
		return nil, err
	}
	// Provision the vendor image: a region of known, unique content the
	// vendor can later probe against. A quarter of RAM, capped.
	imgPages := victim.RAM().NumPages() / 4
	if imgPages > 4096 {
		imgPages = 4096
	}
	if imgPages < 8 {
		imgPages = 8
	}
	imgAt := victim.RAM().NumPages() / 8
	image := mem.GenerateFile(eng.RNG(), "vendor-image", imgPages)
	if err := victim.RAM().LoadFile(image, imgAt); err != nil {
		return nil, err
	}
	c := &Cloud{
		Eng:           eng,
		Net:           network,
		Host:          host,
		Migration:     me,
		Victim:        victim,
		VendorImage:   image,
		VendorImageAt: imgAt,
		Telemetry:     cc.tele,
		Spans:         spans,
	}
	if cc.ksmStarted {
		host.KSM().Start()
	}
	if cc.profile != nil {
		c.Background = workload.StartBackground(workload.VMContext(victim), *cc.profile)
	}
	return c, nil
}

// InstallRootkit runs the CloudSkulk installer against the cloud's victim
// with the given config (zero value fields take the paper defaults).
func (c *Cloud) InstallRootkit(icfg core.InstallConfig) (*core.Rootkit, error) {
	if icfg.TargetName == "" {
		icfg.TargetName = c.Victim.Name()
	}
	if icfg.RITMName == "" {
		base := core.DefaultInstallConfig()
		base.TargetName = icfg.TargetName
		base.HideVMCS = icfg.HideVMCS
		icfg = base
	}
	return core.Installer{Host: c.Host, Migration: c.Migration}.Install(icfg)
}

// perRunSeed derives a distinct seed per repetition.
func perRunSeed(o Options, cell string, run int) int64 {
	h := int64(1469598103934665603)
	for _, b := range []byte(cell) {
		h ^= int64(b)
		h *= 1099511628211
	}
	return o.Seed*1_000_003 + h%997 + int64(run)*7919
}

// cellLabel builds a stable label for seeding and reporting.
func cellLabel(parts ...string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += "/"
		}
		out += p
	}
	return out
}
