package experiments

import (
	"fmt"
	"time"

	"cloudskulk/internal/core"
	"cloudskulk/internal/detect"
	"cloudskulk/internal/report"
	"cloudskulk/internal/runner"
	"cloudskulk/internal/stats"
)

// agentPageOffset places the vendor's probe file in guest memory, clear of
// the kernel-image region.
const agentPageOffset = 2048

// mirrorPageOffset is where the rootkit mirrors intercepted file pushes in
// its own RAM.
const mirrorPageOffset = core.KernelPages + 4096

// DetectionResult is one run of the dedup-timing protocol: the verdict and
// the three per-page timing series of Figs. 5-6.
type DetectionResult struct {
	Scenario string
	Verdict  detect.Verdict
	Evidence detect.Evidence
}

// Figure5DetectionClean reproduces Fig. 5: t0/t1/t2 when no nested VM
// exists (expected: t1 >> t2 ~= t0, verdict clean).
func Figure5DetectionClean(o Options) (DetectionResult, error) {
	o = o.withDefaults()
	c, err := NewCloud(o.Seed, WithGuestMemMB(o.GuestMemMB), WithKSMStarted(), WithTelemetry(o.Telemetry), WithBackend(o.Backend))
	if err != nil {
		return DetectionResult{}, err
	}
	d := detect.NewDedupDetector(c.Host)
	d.Pages = o.DetectPages
	d.Wait = o.KSMWait
	agent := detect.NewGuestAgent(c.Victim, agentPageOffset)
	verdict, ev, err := d.Run(agent)
	if err != nil {
		return DetectionResult{}, err
	}
	return DetectionResult{Scenario: "no nested VM", Verdict: verdict, Evidence: ev}, nil
}

// Figure6DetectionInfected reproduces Fig. 6: t0/t1/t2 with a CloudSkulk
// rootkit installed (expected: t1 ~= t2 >> t0, verdict nested).
func Figure6DetectionInfected(o Options) (DetectionResult, error) {
	o = o.withDefaults()
	c, err := NewCloud(o.Seed, WithGuestMemMB(o.GuestMemMB), WithTelemetry(o.Telemetry), WithBackend(o.Backend))
	if err != nil {
		return DetectionResult{}, err
	}
	rk, err := c.InstallRootkit(core.InstallConfig{})
	if err != nil {
		return DetectionResult{}, err
	}
	c.Host.KSM().Start()
	d := detect.NewDedupDetector(c.Host)
	d.Pages = o.DetectPages
	d.Wait = o.KSMWait
	agent := detect.NewGuestAgent(rk.Victim, agentPageOffset)
	agent.OnLoad = rk.InterceptFilePushes(mirrorPageOffset)
	verdict, ev, err := d.Run(agent)
	if err != nil {
		return DetectionResult{}, err
	}
	return DetectionResult{Scenario: "with nested VM (CloudSkulk)", Verdict: verdict, Evidence: ev}, nil
}

// Render draws the per-series means with merged fractions — the textual
// analogue of the Figs. 5-6 scatter plots.
func (r DetectionResult) Render() string {
	c := report.BarChart{
		Title: "Detection timing, scenario: " + r.Scenario +
			" — verdict: " + r.Verdict.String(),
		Unit: "µs/page write",
		Log:  true,
	}
	add := func(name string, p detect.Probe) {
		s, err := stats.Summarize(p.MicrosSeries())
		if err != nil {
			return
		}
		c.Add(name, s.Mean, fmt.Sprintf("%.0f%% pages merged", p.MergedFraction*100))
	}
	add("t0 (baseline)", r.Evidence.T0)
	add("t1 (after push)", r.Evidence.T1)
	add("t2 (after guest change)", r.Evidence.T2)
	return c.Render()
}

// AblationProbeSizeResult sweeps the probe-file size: the paper argues a
// single page suffices.
type AblationProbeSizeResult struct {
	Pages    []int
	Verdicts []detect.Verdict
}

// AblationProbeSize runs the infected-scenario detection across probe
// sizes.
func AblationProbeSize(o Options, sizes []int) (AblationProbeSizeResult, error) {
	o = o.withDefaults()
	verdicts, err := runner.Map(len(sizes), o.runnerOptions(), func(i int) (detect.Verdict, error) {
		opts := o
		opts.Seed = perRunSeed(o, "ablate-probe", i)
		opts.DetectPages = sizes[i]
		out, err := Figure6DetectionInfected(opts)
		if err != nil {
			return 0, err
		}
		return out.Verdict, nil
	})
	if err != nil {
		return AblationProbeSizeResult{}, err
	}
	return AblationProbeSizeResult{Pages: sizes, Verdicts: verdicts}, nil
}

// Render draws the sweep.
func (r AblationProbeSizeResult) Render() string {
	t := report.Table{
		Title:   "Ablation: detection verdict vs probe-file size (infected host)",
		Headers: []string{"probe pages", "verdict"},
	}
	for i := range r.Pages {
		t.AddRow(fmt.Sprintf("%d", r.Pages[i]), r.Verdicts[i].String())
	}
	return t.Render()
}

// AblationKSMRateResult sweeps the detector's wait window against the KSM
// scan rate: too little waiting and the protocol is inconclusive.
type AblationKSMRateResult struct {
	Waits    []time.Duration
	Verdicts []detect.Verdict
	T1Merged []float64
}

// AblationKSMWait runs clean-scenario detection across merge windows.
func AblationKSMWait(o Options, waits []time.Duration) (AblationKSMRateResult, error) {
	o = o.withDefaults()
	outs, err := runner.Map(len(waits), o.runnerOptions(), func(i int) (DetectionResult, error) {
		opts := o
		opts.Seed = perRunSeed(o, "ablate-ksm", i)
		opts.KSMWait = waits[i]
		return Figure5DetectionClean(opts)
	})
	if err != nil {
		return AblationKSMRateResult{}, err
	}
	var res AblationKSMRateResult
	for i, out := range outs {
		res.Waits = append(res.Waits, waits[i])
		res.Verdicts = append(res.Verdicts, out.Verdict)
		res.T1Merged = append(res.T1Merged, out.Evidence.T1.MergedFraction)
	}
	return res, nil
}

// Render draws the sweep.
func (r AblationKSMRateResult) Render() string {
	t := report.Table{
		Title:   "Ablation: detection vs KSM merge window (clean host)",
		Headers: []string{"wait", "t1 merged", "verdict"},
	}
	for i := range r.Waits {
		t.AddRow(r.Waits[i].String(),
			fmt.Sprintf("%.0f%%", r.T1Merged[i]*100),
			r.Verdicts[i].String())
	}
	return t.Render()
}

// AblationTimingGapResult sweeps the copy-on-write timing gap the whole
// detection signal rests on: as the COW-break cost approaches the regular
// write cost (fast hardware, noisy hosts), classification must degrade to
// inconclusive — never to a wrong verdict.
type AblationTimingGapResult struct {
	GapRatios []float64 // CowBreak / Regular
	Clean     []detect.Verdict
	Infected  []detect.Verdict
}

// AblationTimingGap runs both scenarios across shrinking timing gaps.
func AblationTimingGap(o Options, gapRatios []float64) (AblationTimingGapResult, error) {
	o = o.withDefaults()
	// The grid interleaves (ratio, clean) and (ratio, infected) so cell
	// 2i is the clean run and 2i+1 the infected run at gapRatios[i].
	verdicts, err := runner.Map(2*len(gapRatios), o.runnerOptions(), func(cell int) (detect.Verdict, error) {
		i, infected := cell/2, cell%2 == 1
		ratio := gapRatios[i]
		seed := perRunSeed(o, cellLabel("ablate-gap", fmt.Sprintf("%v", infected)), i)
		c, err := NewCloud(seed, WithGuestMemMB(o.GuestMemMB), WithTelemetry(o.Telemetry), WithBackend(o.Backend))
		if err != nil {
			return 0, err
		}
		var rk *core.Rootkit
		if infected {
			rk, err = c.InstallRootkit(core.InstallConfig{})
			if err != nil {
				return 0, err
			}
		}
		// Shrink the host's dedup timing gap.
		costs := c.Host.KSM().Costs()
		costs.CowBreakWrite = time.Duration(float64(costs.RegularWrite) * ratio)
		c.Host.KSM().Start()
		d := detect.NewDedupDetector(c.Host)
		d.Pages = o.DetectPages
		d.Wait = o.KSMWait
		d.CostOverride = &costs
		var agent *detect.GuestAgent
		if infected {
			agent = detect.NewGuestAgent(rk.Victim, agentPageOffset)
			agent.OnLoad = rk.InterceptFilePushes(mirrorPageOffset)
		} else {
			agent = detect.NewGuestAgent(c.Victim, agentPageOffset)
		}
		verdict, _, err := d.Run(agent)
		if err != nil {
			return 0, err
		}
		return verdict, nil
	})
	var res AblationTimingGapResult
	if err != nil {
		return res, err
	}
	for i, ratio := range gapRatios {
		res.GapRatios = append(res.GapRatios, ratio)
		res.Clean = append(res.Clean, verdicts[2*i])
		res.Infected = append(res.Infected, verdicts[2*i+1])
	}
	return res, nil
}

// Render draws the sweep.
func (r AblationTimingGapResult) Render() string {
	t := report.Table{
		Title:   "Ablation: verdicts vs COW/regular write timing gap",
		Headers: []string{"gap ratio", "clean host", "infected host"},
	}
	for i := range r.GapRatios {
		t.AddRow(fmt.Sprintf("%.1fx", r.GapRatios[i]),
			r.Clean[i].String(), r.Infected[i].String())
	}
	return t.Render()
}

// BaselineComparisonResult pits the three detectors against four attacker
// configurations — the §VI-E discussion as an experiment.
type BaselineComparisonResult struct {
	Rows []BaselineComparisonRow
}

// BaselineComparisonRow is one attacker configuration's outcome against
// all three detectors.
type BaselineComparisonRow struct {
	Attacker        string
	DedupVerdict    detect.Verdict
	VMCSFindings    int
	FingerprintFlag bool // true = fingerprint mismatch observed
}

// BaselineComparison evaluates dedup timing, VMCS scanning, and VMI
// fingerprinting against attacker variants (hardware vs software MMU,
// impersonation on/off).
func BaselineComparison(o Options) (BaselineComparisonResult, error) {
	o = o.withDefaults()
	variants := []struct {
		name        string
		hideVMCS    bool
		impersonate bool
	}{
		{"default (VT-x, impersonating)", false, true},
		{"software MMU (VMCS hidden)", true, true},
		{"naive (no impersonation)", false, false},
	}
	rows, err := runner.Map(len(variants), o.runnerOptions(), func(i int) (BaselineComparisonRow, error) {
		v := variants[i]
		c, err := NewCloud(perRunSeed(o, "baseline-cmp", i), WithGuestMemMB(o.GuestMemMB), WithTelemetry(o.Telemetry), WithBackend(o.Backend))
		if err != nil {
			return BaselineComparisonRow{}, err
		}
		db := detect.NewFingerprintDB()
		db.Baseline(c.Victim)
		icfg := core.DefaultInstallConfig()
		icfg.TargetName = c.Victim.Name()
		icfg.HideVMCS = v.hideVMCS
		icfg.Impersonate = v.impersonate
		rk, err := core.Installer{Host: c.Host, Migration: c.Migration}.Install(icfg)
		if err != nil {
			return BaselineComparisonRow{}, err
		}
		c.Host.KSM().Start()
		d := detect.NewDedupDetector(c.Host)
		d.Pages = o.DetectPages
		d.Wait = o.KSMWait
		agent := detect.NewGuestAgent(rk.Victim, agentPageOffset)
		if v.impersonate {
			agent.OnLoad = rk.InterceptFilePushes(mirrorPageOffset)
		}
		verdict, _, err := d.Run(agent)
		if err != nil {
			return BaselineComparisonRow{}, err
		}
		findings := detect.VMCSScanner{Host: c.Host}.Scan()
		baseFP, _ := db.Known(c.Victim.Name())
		fpMismatch := db.FingerprintOf(rk.RITM) != baseFP
		return BaselineComparisonRow{
			Attacker:        v.name,
			DedupVerdict:    verdict,
			VMCSFindings:    len(findings),
			FingerprintFlag: fpMismatch,
		}, nil
	})
	if err != nil {
		return BaselineComparisonResult{}, err
	}
	return BaselineComparisonResult{Rows: rows}, nil
}

// Render draws the comparison.
func (r BaselineComparisonResult) Render() string {
	t := report.Table{
		Title:   "Detector comparison across attacker variants (paper §VI-E)",
		Headers: []string{"attacker", "dedup timing", "VMCS scan", "VMI fingerprint"},
	}
	for _, row := range r.Rows {
		vmcs := "missed"
		if row.VMCSFindings > 0 {
			vmcs = fmt.Sprintf("detected (%d)", row.VMCSFindings)
		}
		fp := "missed"
		if row.FingerprintFlag {
			fp = "detected"
		}
		t.AddRow(row.Attacker, row.DedupVerdict.String(), vmcs, fp)
	}
	return t.Render()
}
