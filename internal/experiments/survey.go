package experiments

import (
	"fmt"

	"cloudskulk/internal/core"
	"cloudskulk/internal/detect"
	"cloudskulk/internal/kvm"
	"cloudskulk/internal/migrate"
	"cloudskulk/internal/qemu"
	"cloudskulk/internal/report"
	"cloudskulk/internal/sim"
	"cloudskulk/internal/vnet"
)

// SurveyTenant is one tenant's outcome in a multi-tenant sweep.
type SurveyTenant struct {
	Name     string
	SSHPort  int
	Verdict  detect.Verdict
	Infected bool // ground truth, for scoring
}

// SurveyResult is a whole-host detection sweep.
type SurveyResult struct {
	Tenants []SurveyTenant
}

// MultiTenantSurvey models the operational deployment of the defence: a
// host runs several tenants, an attacker CloudSkulks one of them, and the
// operator runs the dedup-timing protocol against *every* tenant — each
// agent reached through the tenant's own service port, so it lands in
// whatever VM actually serves that tenant (the nested one, for the
// victim). Only the compromised tenant should flag.
func MultiTenantSurvey(o Options, tenants int, infected int) (SurveyResult, error) {
	o = o.withDefaults()
	if tenants < 2 {
		tenants = 2
	}
	if infected < 0 || infected >= tenants {
		infected = tenants / 2
	}

	backend, err := o.resolveBackend()
	if err != nil {
		return SurveyResult{}, err
	}
	eng := sim.NewEngine(o.Seed)
	network := vnet.New(eng)
	host, err := kvm.NewHostWithBackend(eng, network, "host", backend)
	if err != nil {
		return SurveyResult{}, err
	}
	me := migrate.NewEngine(eng, network)
	host.SetMigrationService(me)

	names := make([]string, tenants)
	ports := make([]int, tenants)
	for i := 0; i < tenants; i++ {
		names[i] = fmt.Sprintf("tenant%d", i)
		ports[i] = 2200 + i
		cfg := qemu.DefaultConfig(names[i])
		cfg.MemoryMB = o.GuestMemMB
		cfg.MonitorPort = 5550 + i
		cfg.NetDevs[0].HostFwds = []qemu.FwdRule{{HostPort: ports[i], GuestPort: 22}}
		if _, err := host.Hypervisor().CreateVM(cfg); err != nil {
			return SurveyResult{}, err
		}
		if err := host.Hypervisor().Launch(names[i]); err != nil {
			return SurveyResult{}, err
		}
	}

	// The attack captures one tenant.
	icfg := core.DefaultInstallConfig()
	icfg.TargetName = names[infected]
	rk, err := core.Installer{Host: host, Migration: me}.Install(icfg)
	if err != nil {
		return SurveyResult{}, err
	}

	host.KSM().Start()
	d := detect.NewDedupDetector(host)
	d.Pages = o.DetectPages
	d.Wait = o.KSMWait

	var res SurveyResult
	for i := 0; i < tenants; i++ {
		// The operator reaches each tenant through its service port;
		// the agent runs in whatever VM answers there.
		dst, _, err := network.ResolveForward(vnet.Addr{Endpoint: "host", Port: ports[i]})
		if err != nil {
			return SurveyResult{}, err
		}
		vm, ok := host.Hypervisor().FindByEndpoint(dst.Endpoint)
		if !ok {
			return SurveyResult{}, fmt.Errorf("survey: no VM behind %s", dst)
		}
		agent := detect.NewGuestAgent(vm, agentPageOffset)
		if i == infected {
			// The rootkit intercepts pushes to its victim.
			agent.OnLoad = rk.InterceptFilePushes(mirrorPageOffset)
		}
		verdict, _, err := d.Run(agent)
		if err != nil {
			return SurveyResult{}, err
		}
		res.Tenants = append(res.Tenants, SurveyTenant{
			Name:     names[i],
			SSHPort:  ports[i],
			Verdict:  verdict,
			Infected: i == infected,
		})
	}
	return res, nil
}

// Correct reports whether the survey flagged exactly the infected tenants.
func (r SurveyResult) Correct() bool {
	for _, tn := range r.Tenants {
		flagged := tn.Verdict == detect.VerdictNested
		if flagged != tn.Infected {
			return false
		}
	}
	return true
}

// Render draws the survey.
func (r SurveyResult) Render() string {
	t := report.Table{
		Title:   "Multi-tenant detection survey (operator's view)",
		Headers: []string{"tenant", "ssh port", "verdict", "ground truth"},
	}
	for _, tn := range r.Tenants {
		truth := "clean"
		if tn.Infected {
			truth = "CloudSkulk victim"
		}
		t.AddRow(tn.Name, fmt.Sprintf("%d", tn.SSHPort), tn.Verdict.String(), truth)
	}
	return t.Render()
}
