package experiments

import (
	"strings"
	"testing"

	"cloudskulk/internal/detect"
)

func TestArmsRaceMatrix(t *testing.T) {
	o := TestOptions()
	res, err := ArmsRaceSyncCountermeasure(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	cell := func(a ArmsRaceAttacker, p ArmsRaceProbe) ArmsRaceRow {
		for _, r := range res.Rows {
			if r.Attacker == a && r.Probe == p {
				return r
			}
		}
		t.Fatalf("missing cell %s/%s", a, p)
		return ArmsRaceRow{}
	}

	// Baseline: no sync is caught by both probes.
	if v := cell(AttackerNoSync, ProbePushedFile).Verdict; v != detect.VerdictNested {
		t.Fatalf("no-sync/pushed = %v", v)
	}
	if v := cell(AttackerNoSync, ProbeImage).Verdict; v != detect.VerdictNested {
		t.Fatalf("no-sync/image = %v", v)
	}
	// Tracking only pushes evades the pushed-file probe...
	if v := cell(AttackerSyncPush, ProbePushedFile).Verdict; v != detect.VerdictClean {
		t.Fatalf("push-sync/pushed = %v (sync failed to evade)", v)
	}
	// ...but not the unpredictable image probe.
	if v := cell(AttackerSyncPush, ProbeImage).Verdict; v != detect.VerdictNested {
		t.Fatalf("push-sync/image = %v", v)
	}
	// Tracking everything evades both.
	if v := cell(AttackerSyncAllOf, ProbePushedFile).Verdict; v != detect.VerdictClean {
		t.Fatalf("all-sync/pushed = %v", v)
	}
	if v := cell(AttackerSyncAllOf, ProbeImage).Verdict; v != detect.VerdictClean {
		t.Fatalf("all-sync/image = %v", v)
	}
	// ...at a visible and growing cost.
	full := cell(AttackerSyncAllOf, ProbeImage)
	partial := cell(AttackerSyncPush, ProbeImage)
	if full.Traps <= partial.Traps {
		t.Fatalf("full tracking traps (%d) not more than partial (%d)",
			full.Traps, partial.Traps)
	}
	if !full.HookVisible {
		t.Fatal("full tracking hook not visible to integrity checks")
	}
	if cell(AttackerNoSync, ProbeImage).HookVisible {
		t.Fatal("phantom hook on no-sync attacker")
	}
	if full.TrapOverhead <= 0 {
		t.Fatal("no trap overhead recorded")
	}
	out := res.Render()
	for _, want := range []string{"track all guest RAM", "image probe", "hook visible"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestAblationTimingGap(t *testing.T) {
	o := TestOptions()
	// Wide gap classifies; gap of 1.0 (no signal) must degrade to
	// inconclusive, never to a wrong verdict.
	res, err := AblationTimingGap(o, []float64{31.0, 10.0, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.GapRatios) != 3 || len(res.Clean) != 3 || len(res.Infected) != 3 {
		t.Fatalf("rows = %d/%d/%d", len(res.GapRatios), len(res.Clean), len(res.Infected))
	}
	if res.Clean[0] != detect.VerdictClean || res.Infected[0] != detect.VerdictNested {
		t.Fatalf("wide gap: clean=%v infected=%v", res.Clean[0], res.Infected[0])
	}
	if res.Clean[2] != detect.VerdictInconclusive || res.Infected[2] != detect.VerdictInconclusive {
		t.Fatalf("no gap: clean=%v infected=%v", res.Clean[2], res.Infected[2])
	}
	for i := range res.GapRatios {
		if res.Clean[i] == detect.VerdictNested {
			t.Fatalf("false positive at gap %v", res.GapRatios[i])
		}
		if res.Infected[i] == detect.VerdictClean {
			t.Fatalf("false negative at gap %v", res.GapRatios[i])
		}
	}
	if !strings.Contains(res.Render(), "gap ratio") {
		t.Fatal("render")
	}
}

func TestVendorImageProvisioned(t *testing.T) {
	c, err := NewCloud(1, WithGuestMemMB(32))
	if err != nil {
		t.Fatal(err)
	}
	if c.VendorImage == nil || c.VendorImage.NumPages() < 8 {
		t.Fatalf("vendor image = %+v", c.VendorImage)
	}
	if got := c.Victim.RAM().FileResident(c.VendorImage, c.VendorImageAt); got != c.VendorImage.NumPages() {
		t.Fatalf("image residency = %d/%d", got, c.VendorImage.NumPages())
	}
}

func TestImageProbeCleanHost(t *testing.T) {
	// On a clean host the image probe behaves like Fig. 5.
	o := TestOptions()
	c, err := NewCloud(o.Seed, WithGuestMemMB(o.GuestMemMB))
	if err != nil {
		t.Fatal(err)
	}
	c.Host.KSM().Start()
	d := detect.NewDedupDetector(c.Host)
	d.Pages = o.DetectPages
	d.Wait = o.KSMWait
	agent := detect.NewGuestAgent(c.Victim, agentPageOffset)
	verdict, ev, err := d.RunImageProbe(agent, c.VendorImage, c.VendorImageAt)
	if err != nil {
		t.Fatal(err)
	}
	if verdict != detect.VerdictClean {
		t.Fatalf("verdict = %v (t1 merged %.0f%%, t2 merged %.0f%%)",
			verdict, ev.T1.MergedFraction*100, ev.T2.MergedFraction*100)
	}
}
