package experiments

import (
	"fmt"

	"cloudskulk/internal/cpu"
	"cloudskulk/internal/report"
	"cloudskulk/internal/runner"
	"cloudskulk/internal/sim"
	"cloudskulk/internal/stats"
	"cloudskulk/internal/workload"
)

// levelContext builds a measurement context at a virtualization level with
// the backend's calibrated model and light measurement noise. The vCPU
// counts into o.Telemetry when one is set (SetTelemetry(nil) is the
// detached fast path).
func levelContext(o Options, seed int64, level cpu.Level, memMB int64) *workload.Context {
	prof := o.mustBackend().Profile
	eng := sim.NewEngine(seed)
	ctx := workload.HostContext(eng, prof.CPU, memMB<<20)
	if level != cpu.L0 {
		ctx.VCPU = cpu.NewVCPU(eng, prof.CPU, level)
	}
	ctx.VCPU.Noise = prof.VCPUNoise
	ctx.VCPU.SetTelemetry(o.Telemetry)
	return ctx
}

// levelRunCells enumerates the (level, run) grid in report order; sweeps
// shard it across the worker pool and reassemble by index.
type levelRunCell struct {
	level cpu.Level
	run   int
}

func levelRunCells(runs int) []levelRunCell {
	cells := make([]levelRunCell, 0, len(cpu.Levels)*runs)
	for _, level := range cpu.Levels {
		for run := 0; run < runs; run++ {
			cells = append(cells, levelRunCell{level, run})
		}
	}
	return cells
}

// Figure2Result holds the kernel-compile timings per level.
type Figure2Result struct {
	// Seconds per level, one entry per run.
	Seconds map[cpu.Level][]float64
}

// Figure2KernelCompile reproduces Fig. 2: Linux-kernel compile time at
// L0/L1/L2, with ccache enabled only on L0 (the paper's footnote 1).
func Figure2KernelCompile(o Options) (Figure2Result, error) {
	o = o.withDefaults()
	if _, err := o.resolveBackend(); err != nil {
		return Figure2Result{}, err
	}
	cells := levelRunCells(o.Runs)
	secs, err := runner.Map(len(cells), o.runnerOptions(), func(i int) (float64, error) {
		cl := cells[i]
		ctx := levelContext(o, perRunSeed(o, cellLabel("fig2", cl.level.String()), cl.run), cl.level, o.GuestMemMB)
		k := workload.DefaultKernelCompile(cl.level == cpu.L0)
		k.Units = o.CompileUnits
		d, err := k.Run(ctx)
		if err != nil {
			return 0, fmt.Errorf("fig2 %v run %d: %w", cl.level, cl.run, err)
		}
		// Run-to-run system variance (cron, thermal, page-cache
		// state) that per-operation noise averages away over
		// thousands of compilation units.
		return ctx.Eng.Gauss(d.Seconds(), 0.015), nil
	})
	if err != nil {
		return Figure2Result{}, err
	}
	res := Figure2Result{Seconds: make(map[cpu.Level][]float64, 3)}
	for i, cl := range cells {
		res.Seconds[cl.level] = append(res.Seconds[cl.level], secs[i])
	}
	return res, nil
}

// Mean returns a level's mean compile time in seconds.
func (r Figure2Result) Mean(l cpu.Level) float64 { return stats.Mean(r.Seconds[l]) }

// Render draws the figure as a log-scale bar chart with the paper-style
// percentage labels.
func (r Figure2Result) Render() string {
	c := report.BarChart{
		Title: "Fig 2: Linux kernel compile timing",
		Unit:  "s",
		Log:   true,
	}
	prev := 0.0
	for _, l := range cpu.Levels {
		s, _ := stats.Summarize(r.Seconds[l])
		note := fmt.Sprintf("rsd %.1f%%", s.RelStddev*100)
		if prev > 0 {
			note = report.Pct(stats.PercentChange(prev, s.Mean)) + " vs layer below, " + note
		}
		c.Add(l.String(), s.Mean, note)
		prev = s.Mean
	}
	return c.Render()
}

// Figure3Result holds netperf throughput per level.
type Figure3Result struct {
	// Mbps per level, one entry per run.
	Mbps map[cpu.Level][]float64
}

// Figure3Netperf reproduces Fig. 3: netperf TCP stream throughput at
// L0/L1/L2, 5 consecutive runs averaged.
func Figure3Netperf(o Options) (Figure3Result, error) {
	o = o.withDefaults()
	if _, err := o.resolveBackend(); err != nil {
		return Figure3Result{}, err
	}
	link := int64(2) << 30 // intra-host virtio path
	cells := levelRunCells(o.Runs)
	mbps, err := runner.Map(len(cells), o.runnerOptions(), func(i int) (float64, error) {
		cl := cells[i]
		ctx := levelContext(o, perRunSeed(o, cellLabel("fig3", cl.level.String()), cl.run), cl.level, 64)
		return workload.DefaultNetperf().Run(ctx, link), nil
	})
	if err != nil {
		return Figure3Result{}, err
	}
	res := Figure3Result{Mbps: make(map[cpu.Level][]float64, 3)}
	for i, cl := range cells {
		res.Mbps[cl.level] = append(res.Mbps[cl.level], mbps[i])
	}
	return res, nil
}

// Mean returns a level's mean throughput in Mbit/s.
func (r Figure3Result) Mean(l cpu.Level) float64 { return stats.Mean(r.Mbps[l]) }

// RelStddev returns a level's relative standard deviation.
func (r Figure3Result) RelStddev(l cpu.Level) float64 { return stats.RelStddev(r.Mbps[l]) }

// Render draws the figure.
func (r Figure3Result) Render() string {
	c := report.BarChart{
		Title: "Fig 3: Netperf TCP stream throughput",
		Unit:  "Mbit/s",
		Log:   true,
	}
	prev := 0.0
	for _, l := range cpu.Levels {
		s, _ := stats.Summarize(r.Mbps[l])
		note := fmt.Sprintf("rsd %.2f%%", s.RelStddev*100)
		if prev > 0 {
			note = report.Pct(stats.PercentChange(prev, s.Mean)) + " vs layer below, " + note
		}
		c.Add(l.String(), s.Mean, note)
		prev = s.Mean
	}
	return c.Render()
}

// lmbenchColumn is one level's measurements for a lmbench-style table:
// operation names (identical across levels) plus one value per operation.
type lmbenchColumn struct {
	names []string
	vals  []float64
}

// Table2Result holds the lmbench arithmetic table (ns per op).
type Table2Result struct {
	Ops   []string
	Nanos map[cpu.Level][]float64
}

// Table2Arithmetic reproduces Table II.
func Table2Arithmetic(o Options) Table2Result {
	o = o.withDefaults()
	cols, err := runner.Map(len(cpu.Levels), o.runnerOptions(), func(i int) (lmbenchColumn, error) {
		level := cpu.Levels[i]
		ctx := levelContext(o, perRunSeed(o, "table2", int(level)), level, 64)
		var col lmbenchColumn
		for _, r := range workload.RunLmbench(ctx, workload.ArithmeticOps(), o.LmbenchReps) {
			col.names = append(col.names, r.Op.Name)
			col.vals = append(col.vals, r.Mean.Nanoseconds())
		}
		return col, nil
	})
	if err != nil {
		panic(err) // cells are error-free; only a cell panic reaches here
	}
	res := Table2Result{Ops: cols[0].names, Nanos: make(map[cpu.Level][]float64, 3)}
	for i, level := range cpu.Levels {
		res.Nanos[level] = cols[i].vals
	}
	return res
}

// Render draws Table II in the paper's layout.
func (r Table2Result) Render() string {
	t := report.Table{
		Title:   "TABLE II: lmbench arithmetic operations - times in nanoseconds",
		Headers: append([]string{"Config"}, r.Ops...),
	}
	for _, l := range cpu.Levels {
		row := []string{l.String()}
		for _, v := range r.Nanos[l] {
			row = append(row, report.F2(v))
		}
		t.AddRow(row...)
	}
	return t.Render()
}

// Table3Result holds the lmbench process table (µs per op).
type Table3Result struct {
	Ops    []string
	Micros map[cpu.Level][]float64
}

// Table3Processes reproduces Table III.
func Table3Processes(o Options) Table3Result {
	o = o.withDefaults()
	cols, err := runner.Map(len(cpu.Levels), o.runnerOptions(), func(i int) (lmbenchColumn, error) {
		level := cpu.Levels[i]
		ctx := levelContext(o, perRunSeed(o, "table3", int(level)), level, 64)
		var col lmbenchColumn
		for _, r := range workload.RunLmbench(ctx, workload.ProcessOps(), o.LmbenchReps/10+1) {
			col.names = append(col.names, r.Op.Name)
			col.vals = append(col.vals, r.Mean.Microseconds())
		}
		return col, nil
	})
	if err != nil {
		panic(err)
	}
	res := Table3Result{Ops: cols[0].names, Micros: make(map[cpu.Level][]float64, 3)}
	for i, level := range cpu.Levels {
		res.Micros[level] = cols[i].vals
	}
	return res
}

// Render draws Table III.
func (r Table3Result) Render() string {
	t := report.Table{
		Title:   "TABLE III: lmbench processes - times in microseconds",
		Headers: append([]string{"Config"}, r.Ops...),
	}
	for _, l := range cpu.Levels {
		row := []string{l.String()}
		for _, v := range r.Micros[l] {
			row = append(row, report.F2(v))
		}
		t.AddRow(row...)
	}
	return t.Render()
}

// Table4Result holds the file-op table (operations per second).
type Table4Result struct {
	// PerSec[level] parallels workload.FileOps() order.
	Labels []string
	PerSec map[cpu.Level][]float64
}

// Table4FileOps reproduces Table IV.
func Table4FileOps(o Options) Table4Result {
	o = o.withDefaults()
	cols, err := runner.Map(len(cpu.Levels), o.runnerOptions(), func(i int) (lmbenchColumn, error) {
		level := cpu.Levels[i]
		ctx := levelContext(o, perRunSeed(o, "table4", int(level)), level, 64)
		var col lmbenchColumn
		for _, r := range workload.RunFileOps(ctx, o.LmbenchReps/10+1) {
			col.names = append(col.names, r.FileOp.Op.Name)
			col.vals = append(col.vals, r.PerSec)
		}
		return col, nil
	})
	if err != nil {
		panic(err)
	}
	res := Table4Result{Labels: cols[0].names, PerSec: make(map[cpu.Level][]float64, 3)}
	for i, level := range cpu.Levels {
		res.PerSec[level] = cols[i].vals
	}
	return res
}

// Render draws Table IV.
func (r Table4Result) Render() string {
	t := report.Table{
		Title:   "TABLE IV: lmbench file system latency - file creations/deletions per second",
		Headers: append([]string{"Config"}, r.Labels...),
	}
	for _, l := range cpu.Levels {
		row := []string{l.String()}
		for _, v := range r.PerSec[l] {
			row = append(row, report.Comma(int64(v)))
		}
		t.AddRow(row...)
	}
	return t.Render()
}
