package experiments

import (
	"fmt"

	"cloudskulk/internal/cpu"
	"cloudskulk/internal/report"
	"cloudskulk/internal/sim"
	"cloudskulk/internal/stats"
	"cloudskulk/internal/workload"
)

// levelContext builds a measurement context at a virtualization level with
// the paper-calibrated model and light measurement noise.
func levelContext(seed int64, level cpu.Level, memMB int64) *workload.Context {
	eng := sim.NewEngine(seed)
	ctx := workload.HostContext(eng, cpu.DefaultModel(), memMB<<20)
	if level != cpu.L0 {
		ctx.VCPU = cpu.NewVCPU(eng, cpu.DefaultModel(), level)
	}
	ctx.VCPU.Noise = 0.01
	return ctx
}

// Figure2Result holds the kernel-compile timings per level.
type Figure2Result struct {
	// Seconds per level, one entry per run.
	Seconds map[cpu.Level][]float64
}

// Figure2KernelCompile reproduces Fig. 2: Linux-kernel compile time at
// L0/L1/L2, with ccache enabled only on L0 (the paper's footnote 1).
func Figure2KernelCompile(o Options) (Figure2Result, error) {
	o = o.withDefaults()
	res := Figure2Result{Seconds: make(map[cpu.Level][]float64, 3)}
	for _, level := range cpu.Levels {
		for run := 0; run < o.Runs; run++ {
			ctx := levelContext(perRunSeed(o, cellLabel("fig2", level.String()), run), level, o.GuestMemMB)
			k := workload.DefaultKernelCompile(level == cpu.L0)
			k.Units = o.CompileUnits
			d, err := k.Run(ctx)
			if err != nil {
				return Figure2Result{}, fmt.Errorf("fig2 %v run %d: %w", level, run, err)
			}
			// Run-to-run system variance (cron, thermal, page-cache
			// state) that per-operation noise averages away over
			// thousands of compilation units.
			secs := ctx.Eng.Gauss(d.Seconds(), 0.015)
			res.Seconds[level] = append(res.Seconds[level], secs)
		}
	}
	return res, nil
}

// Mean returns a level's mean compile time in seconds.
func (r Figure2Result) Mean(l cpu.Level) float64 { return stats.Mean(r.Seconds[l]) }

// Render draws the figure as a log-scale bar chart with the paper-style
// percentage labels.
func (r Figure2Result) Render() string {
	c := report.BarChart{
		Title: "Fig 2: Linux kernel compile timing",
		Unit:  "s",
		Log:   true,
	}
	prev := 0.0
	for _, l := range cpu.Levels {
		s, _ := stats.Summarize(r.Seconds[l])
		note := fmt.Sprintf("rsd %.1f%%", s.RelStddev*100)
		if prev > 0 {
			note = report.Pct(stats.PercentChange(prev, s.Mean)) + " vs layer below, " + note
		}
		c.Add(l.String(), s.Mean, note)
		prev = s.Mean
	}
	return c.Render()
}

// Figure3Result holds netperf throughput per level.
type Figure3Result struct {
	// Mbps per level, one entry per run.
	Mbps map[cpu.Level][]float64
}

// Figure3Netperf reproduces Fig. 3: netperf TCP stream throughput at
// L0/L1/L2, 5 consecutive runs averaged.
func Figure3Netperf(o Options) (Figure3Result, error) {
	o = o.withDefaults()
	res := Figure3Result{Mbps: make(map[cpu.Level][]float64, 3)}
	link := int64(2) << 30 // intra-host virtio path
	for _, level := range cpu.Levels {
		for run := 0; run < o.Runs; run++ {
			ctx := levelContext(perRunSeed(o, cellLabel("fig3", level.String()), run), level, 64)
			res.Mbps[level] = append(res.Mbps[level], workload.DefaultNetperf().Run(ctx, link))
		}
	}
	return res, nil
}

// Mean returns a level's mean throughput in Mbit/s.
func (r Figure3Result) Mean(l cpu.Level) float64 { return stats.Mean(r.Mbps[l]) }

// RelStddev returns a level's relative standard deviation.
func (r Figure3Result) RelStddev(l cpu.Level) float64 { return stats.RelStddev(r.Mbps[l]) }

// Render draws the figure.
func (r Figure3Result) Render() string {
	c := report.BarChart{
		Title: "Fig 3: Netperf TCP stream throughput",
		Unit:  "Mbit/s",
		Log:   true,
	}
	prev := 0.0
	for _, l := range cpu.Levels {
		s, _ := stats.Summarize(r.Mbps[l])
		note := fmt.Sprintf("rsd %.2f%%", s.RelStddev*100)
		if prev > 0 {
			note = report.Pct(stats.PercentChange(prev, s.Mean)) + " vs layer below, " + note
		}
		c.Add(l.String(), s.Mean, note)
		prev = s.Mean
	}
	return c.Render()
}

// Table2Result holds the lmbench arithmetic table (ns per op).
type Table2Result struct {
	Ops   []string
	Nanos map[cpu.Level][]float64
}

// Table2Arithmetic reproduces Table II.
func Table2Arithmetic(o Options) Table2Result {
	o = o.withDefaults()
	res := Table2Result{Nanos: make(map[cpu.Level][]float64, 3)}
	for _, level := range cpu.Levels {
		ctx := levelContext(perRunSeed(o, "table2", int(level)), level, 64)
		for _, r := range workload.RunLmbench(ctx, workload.ArithmeticOps(), o.LmbenchReps) {
			if level == cpu.L0 {
				res.Ops = append(res.Ops, r.Op.Name)
			}
			res.Nanos[level] = append(res.Nanos[level], r.Mean.Nanoseconds())
		}
	}
	return res
}

// Render draws Table II in the paper's layout.
func (r Table2Result) Render() string {
	t := report.Table{
		Title:   "TABLE II: lmbench arithmetic operations - times in nanoseconds",
		Headers: append([]string{"Config"}, r.Ops...),
	}
	for _, l := range cpu.Levels {
		row := []string{l.String()}
		for _, v := range r.Nanos[l] {
			row = append(row, report.F2(v))
		}
		t.AddRow(row...)
	}
	return t.Render()
}

// Table3Result holds the lmbench process table (µs per op).
type Table3Result struct {
	Ops    []string
	Micros map[cpu.Level][]float64
}

// Table3Processes reproduces Table III.
func Table3Processes(o Options) Table3Result {
	o = o.withDefaults()
	res := Table3Result{Micros: make(map[cpu.Level][]float64, 3)}
	for _, level := range cpu.Levels {
		ctx := levelContext(perRunSeed(o, "table3", int(level)), level, 64)
		for _, r := range workload.RunLmbench(ctx, workload.ProcessOps(), o.LmbenchReps/10+1) {
			if level == cpu.L0 {
				res.Ops = append(res.Ops, r.Op.Name)
			}
			res.Micros[level] = append(res.Micros[level], r.Mean.Microseconds())
		}
	}
	return res
}

// Render draws Table III.
func (r Table3Result) Render() string {
	t := report.Table{
		Title:   "TABLE III: lmbench processes - times in microseconds",
		Headers: append([]string{"Config"}, r.Ops...),
	}
	for _, l := range cpu.Levels {
		row := []string{l.String()}
		for _, v := range r.Micros[l] {
			row = append(row, report.F2(v))
		}
		t.AddRow(row...)
	}
	return t.Render()
}

// Table4Result holds the file-op table (operations per second).
type Table4Result struct {
	// PerSec[level] parallels workload.FileOps() order.
	Labels []string
	PerSec map[cpu.Level][]float64
}

// Table4FileOps reproduces Table IV.
func Table4FileOps(o Options) Table4Result {
	o = o.withDefaults()
	res := Table4Result{PerSec: make(map[cpu.Level][]float64, 3)}
	for _, level := range cpu.Levels {
		ctx := levelContext(perRunSeed(o, "table4", int(level)), level, 64)
		for _, r := range workload.RunFileOps(ctx, o.LmbenchReps/10+1) {
			if level == cpu.L0 {
				res.Labels = append(res.Labels, r.FileOp.Op.Name)
			}
			res.PerSec[level] = append(res.PerSec[level], r.PerSec)
		}
	}
	return res
}

// Render draws Table IV.
func (r Table4Result) Render() string {
	t := report.Table{
		Title:   "TABLE IV: lmbench file system latency - file creations/deletions per second",
		Headers: append([]string{"Config"}, r.Labels...),
	}
	for _, l := range cpu.Levels {
		row := []string{l.String()}
		for _, v := range r.PerSec[l] {
			row = append(row, report.Comma(int64(v)))
		}
		t.AddRow(row...)
	}
	return t.Render()
}
