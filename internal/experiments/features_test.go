package experiments

import (
	"strings"
	"testing"
)

func TestAblationMigrationFeatures(t *testing.T) {
	o := TestOptions()
	res, err := AblationMigrationFeatures(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) != 4 {
		t.Fatalf("variants = %d", len(res.Variants))
	}
	base := res.Seconds[0]
	for i, v := range res.Variants[1:] {
		if res.Seconds[i+1] >= base {
			t.Fatalf("%s (%vs) not faster than defaults (%vs)", v, res.Seconds[i+1], base)
		}
	}
	for i := range res.Variants {
		if !res.Converged[i] {
			t.Fatalf("%s did not converge", res.Variants[i])
		}
	}
	if !strings.Contains(res.Render(), "auto-converge") {
		t.Fatal("render")
	}
}
