package cloudskulk_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"cloudskulk"
	"cloudskulk/internal/cpu"
	"cloudskulk/internal/mem"
)

// Each benchmark regenerates one of the paper's tables or figures at the
// paper's scale (1 GiB guests, the paper's parameters) and reports the
// headline numbers via b.ReportMetric, so `go test -bench` output doubles
// as the reproduction record. ns/op measures how long the simulation
// takes to produce the artefact, not the simulated quantity itself.

func benchOptions(i int) cloudskulk.ExperimentOptions {
	o := cloudskulk.DefaultExperimentOptions()
	o.Seed = int64(i + 1)
	o.Runs = 1 // each b.N iteration is one full run with a fresh seed
	return o
}

// BenchmarkTable1CVEInventory regenerates Table I.
func BenchmarkTable1CVEInventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := cloudskulk.Table1CVE()
		if res.Render() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure2KernelCompile regenerates Fig. 2 and reports the mean
// compile time per level in simulated seconds.
func BenchmarkFigure2KernelCompile(b *testing.B) {
	var l0, l1, l2 float64
	for i := 0; i < b.N; i++ {
		res, err := cloudskulk.Figure2KernelCompile(benchOptions(i))
		if err != nil {
			b.Fatal(err)
		}
		l0, l1, l2 = res.Mean(cpu.L0), res.Mean(cpu.L1), res.Mean(cpu.L2)
	}
	b.ReportMetric(l0, "L0-ccache-s")
	b.ReportMetric(l1, "L1-s")
	b.ReportMetric(l2, "L2-s")
	b.ReportMetric((l2/l1-1)*100, "L2-over-L1-%")
}

// BenchmarkFigure3Netperf regenerates Fig. 3 and reports Mbit/s per level.
func BenchmarkFigure3Netperf(b *testing.B) {
	var l0, l1, l2 float64
	for i := 0; i < b.N; i++ {
		o := benchOptions(i)
		o.Runs = 5 // the paper averages 5 netperf runs
		res, err := cloudskulk.Figure3Netperf(o)
		if err != nil {
			b.Fatal(err)
		}
		l0, l1, l2 = res.Mean(cpu.L0), res.Mean(cpu.L1), res.Mean(cpu.L2)
	}
	b.ReportMetric(l0, "L0-Mbps")
	b.ReportMetric(l1, "L1-Mbps")
	b.ReportMetric(l2, "L2-Mbps")
}

// BenchmarkFigure4MigrationTiming regenerates Fig. 4 and reports the
// nested (L0-L1) end-to-end times for the three workloads — the paper's
// ~26 s / ~29 s / ~820 s install-time row.
func BenchmarkFigure4MigrationTiming(b *testing.B) {
	var idle, fb, kc, idleFlat float64
	for i := 0; i < b.N; i++ {
		res, err := cloudskulk.Figure4Migration(benchOptions(i))
		if err != nil {
			b.Fatal(err)
		}
		cell := func(w string, k string) float64 {
			c, ok := res.Cell(w, cloudskulk.MigrationKind(k))
			if !ok || len(c.Seconds) == 0 {
				b.Fatalf("missing cell %s/%s", w, k)
			}
			return c.Seconds[0]
		}
		idle = cell("idle", "L0-L1")
		fb = cell("filebench", "L0-L1")
		kc = cell("kernel-compile", "L0-L1")
		idleFlat = cell("idle", "L0-L0")
	}
	b.ReportMetric(idle, "idle-L0L1-s")
	b.ReportMetric(fb, "filebench-L0L1-s")
	b.ReportMetric(kc, "compile-L0L1-s")
	b.ReportMetric(idleFlat, "idle-L0L0-s")
}

// BenchmarkTable2LmbenchArith regenerates Table II and reports the L2
// integer-divide latency (paper: 6.14 ns).
func BenchmarkTable2LmbenchArith(b *testing.B) {
	var intDivL2 float64
	for i := 0; i < b.N; i++ {
		res := cloudskulk.Table2Arithmetic(benchOptions(i))
		for j, op := range res.Ops {
			if op == "integer div" {
				intDivL2 = res.Nanos[cpu.L2][j]
			}
		}
	}
	b.ReportMetric(intDivL2, "int-div-L2-ns")
}

// BenchmarkTable3LmbenchProc regenerates Table III and reports the L2
// pipe latency and fork+exit (paper: 65.49 µs and 242.19 µs).
func BenchmarkTable3LmbenchProc(b *testing.B) {
	var pipeL2, forkL2 float64
	for i := 0; i < b.N; i++ {
		res := cloudskulk.Table3Processes(benchOptions(i))
		for j, op := range res.Ops {
			switch op {
			case "pipe latency":
				pipeL2 = res.Micros[cpu.L2][j]
			case "fork+ exit":
				forkL2 = res.Micros[cpu.L2][j]
			}
		}
	}
	b.ReportMetric(pipeL2, "pipe-L2-us")
	b.ReportMetric(forkL2, "fork-L2-us")
}

// BenchmarkTable4LmbenchFile regenerates Table IV and reports the 4K
// create rate at L2 (paper: ~matches baseline).
func BenchmarkTable4LmbenchFile(b *testing.B) {
	var create4kL2 float64
	for i := 0; i < b.N; i++ {
		res := cloudskulk.Table4FileOps(benchOptions(i))
		for j, label := range res.Labels {
			if label == "file create 4K" {
				create4kL2 = res.PerSec[cpu.L2][j]
			}
		}
	}
	b.ReportMetric(create4kL2, "create4K-L2-ops/s")
}

// BenchmarkFigure5DetectNoNested regenerates Fig. 5 and reports the three
// mean per-page write times in µs.
func BenchmarkFigure5DetectNoNested(b *testing.B) {
	var t0, t1, t2 float64
	for i := 0; i < b.N; i++ {
		res, err := cloudskulk.Figure5DetectionClean(benchOptions(i))
		if err != nil {
			b.Fatal(err)
		}
		if res.Verdict != cloudskulk.VerdictClean {
			b.Fatalf("verdict = %v", res.Verdict)
		}
		t0 = float64(res.Evidence.T0.Mean()) / 1e3
		t1 = float64(res.Evidence.T1.Mean()) / 1e3
		t2 = float64(res.Evidence.T2.Mean()) / 1e3
	}
	b.ReportMetric(t0, "t0-us")
	b.ReportMetric(t1, "t1-us")
	b.ReportMetric(t2, "t2-us")
}

// BenchmarkFigure6DetectNested regenerates Fig. 6 (rootkit installed).
func BenchmarkFigure6DetectNested(b *testing.B) {
	var t0, t1, t2 float64
	for i := 0; i < b.N; i++ {
		res, err := cloudskulk.Figure6DetectionInfected(benchOptions(i))
		if err != nil {
			b.Fatal(err)
		}
		if res.Verdict != cloudskulk.VerdictNested {
			b.Fatalf("verdict = %v", res.Verdict)
		}
		t0 = float64(res.Evidence.T0.Mean()) / 1e3
		t1 = float64(res.Evidence.T1.Mean()) / 1e3
		t2 = float64(res.Evidence.T2.Mean()) / 1e3
	}
	b.ReportMetric(t0, "t0-us")
	b.ReportMetric(t1, "t1-us")
	b.ReportMetric(t2, "t2-us")
}

// BenchmarkBackendDetection runs the Fig. 5 (clean) and Fig. 6 (infected)
// detection sweeps on every registered hypervisor backend, one
// sub-benchmark per backend × figure, reporting each backend's timing
// signature. `make bench-backends` feeds this through cmd/benchjson.
func BenchmarkBackendDetection(b *testing.B) {
	for _, backend := range cloudskulk.Backends() {
		for _, fig := range []string{"fig5-clean", "fig6-infected"} {
			fig := fig
			b.Run(backend+"/"+fig, func(b *testing.B) {
				var t0, t1, t2 float64
				for i := 0; i < b.N; i++ {
					o := benchOptions(i)
					o.Backend = backend
					var ev cloudskulk.DetectionResult
					var err error
					if fig == "fig5-clean" {
						ev, err = cloudskulk.Figure5DetectionClean(o)
						if err == nil && ev.Verdict != cloudskulk.VerdictClean {
							b.Fatalf("%s: verdict = %v", backend, ev.Verdict)
						}
					} else {
						ev, err = cloudskulk.Figure6DetectionInfected(o)
						if err == nil && ev.Verdict != cloudskulk.VerdictNested {
							b.Fatalf("%s: verdict = %v", backend, ev.Verdict)
						}
					}
					if err != nil {
						b.Fatal(err)
					}
					t0 = float64(ev.Evidence.T0.Mean()) / 1e3
					t1 = float64(ev.Evidence.T1.Mean()) / 1e3
					t2 = float64(ev.Evidence.T2.Mean()) / 1e3
				}
				b.ReportMetric(t0, "t0-us")
				b.ReportMetric(t1, "t1-us")
				b.ReportMetric(t2, "t2-us")
			})
		}
	}
}

// BenchmarkRootkitInstall measures the full four-step installation against
// an idle 1 GiB victim and reports the simulated install time (the
// paper's "less than 1 minute" demo claim).
func BenchmarkRootkitInstall(b *testing.B) {
	var installSecs float64
	for i := 0; i < b.N; i++ {
		cloud, err := cloudskulk.New(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		rk, err := cloud.InstallRootkit(cloudskulk.InstallConfig{})
		if err != nil {
			b.Fatal(err)
		}
		installSecs = rk.Report.TotalTime.Seconds()
	}
	b.ReportMetric(installSecs, "install-s")
}

// BenchmarkArmsRaceSyncCountermeasure runs the §VI-D matrix and reports
// whether full-RAM tracking evades both probes and what it costs in traps.
func BenchmarkArmsRaceSyncCountermeasure(b *testing.B) {
	var evades, traps float64
	for i := 0; i < b.N; i++ {
		res, err := cloudskulk.ArmsRaceSyncCountermeasure(benchOptions(i))
		if err != nil {
			b.Fatal(err)
		}
		evades, traps = 0, 0
		for _, row := range res.Rows {
			if row.Attacker == "track all guest RAM" {
				traps += float64(row.Traps)
				if row.Verdict == cloudskulk.VerdictClean {
					evades++
				}
			}
		}
	}
	b.ReportMetric(evades, "full-track-evasions")
	b.ReportMetric(traps, "full-track-traps")
}

// BenchmarkArmsRaceMatrix runs the scenario engine's full coverage matrix
// — every generated strategy × every roster detector × every registered
// backend — and reports the roster's overall catch rate plus the number
// of dedup-evading strategies the invariant detector recovers.
// `make bench-armsrace` feeds this through cmd/benchjson.
func BenchmarkArmsRaceMatrix(b *testing.B) {
	var caught, cells, pairs float64
	for i := 0; i < b.N; i++ {
		res, err := cloudskulk.ArmsRaceMatrix(benchOptions(i))
		if err != nil {
			b.Fatal(err)
		}
		caught, cells = 0, float64(len(res.Cells))
		for _, c := range res.Cells {
			if c.Caught {
				caught++
			}
		}
		pairs = float64(res.EvasionPairs())
	}
	b.ReportMetric(100*caught/cells, "caught-pct")
	b.ReportMetric(pairs, "evasion-pairs-closed")
}

// BenchmarkMultiTenantSurvey sweeps a three-tenant host with one victim
// and reports classification accuracy.
func BenchmarkMultiTenantSurvey(b *testing.B) {
	var correct float64
	for i := 0; i < b.N; i++ {
		res, err := cloudskulk.MultiTenantSurvey(benchOptions(i), 3, 1)
		if err != nil {
			b.Fatal(err)
		}
		correct = 0
		if res.Correct() {
			correct = 1
		}
	}
	b.ReportMetric(correct, "survey-correct")
}

// BenchmarkRemediationDrill runs the defender's full runbook and reports
// the tenant's remediation outage in simulated seconds.
func BenchmarkRemediationDrill(b *testing.B) {
	var outage float64
	for i := 0; i < b.N; i++ {
		res, err := cloudskulk.RemediationDrill(benchOptions(i))
		if err != nil {
			b.Fatal(err)
		}
		if res.PostVerdict != cloudskulk.VerdictClean {
			b.Fatalf("post verdict = %v", res.PostVerdict)
		}
		outage = res.Downtime.Seconds()
	}
	b.ReportMetric(outage, "remediation-outage-s")
}

// BenchmarkWatchdogTimeToDetect reports the infection-to-alert latency of
// a 10-minute-period watchdog, in simulated seconds.
func BenchmarkWatchdogTimeToDetect(b *testing.B) {
	var ttd float64
	for i := 0; i < b.N; i++ {
		res, err := cloudskulk.TimeToDetect(benchOptions(i), 10*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		ttd = res.TimeToDetect.Seconds()
	}
	b.ReportMetric(ttd, "time-to-detect-s")
}

// Ablation benches (DESIGN.md §4).

// BenchmarkAblationExitMultiplier sweeps the Turtles multiplier.
func BenchmarkAblationExitMultiplier(b *testing.B) {
	var at18 float64
	for i := 0; i < b.N; i++ {
		res := cloudskulk.AblationExitMultiplier(benchOptions(i), []int{1, 4, 9, 18, 36, 72})
		at18 = res.PipeL2Us[3]
	}
	b.ReportMetric(at18, "pipe-L2-at-18-us")
}

// BenchmarkAblationDirtyRate sweeps guest dirty rate across the pre-copy
// convergence knee.
func BenchmarkAblationDirtyRate(b *testing.B) {
	var knee float64
	for i := 0; i < b.N; i++ {
		res, err := cloudskulk.AblationDirtyRate(benchOptions(i),
			[]float64{100, 2000, 4000, 6000, 7000, 7500, 7900})
		if err != nil {
			b.Fatal(err)
		}
		knee = res.Seconds[len(res.Seconds)-1] / res.Seconds[0]
	}
	b.ReportMetric(knee, "slowdown-at-7900/s")
}

// BenchmarkAblationKSMScanRate sweeps the detector's merge window.
func BenchmarkAblationKSMScanRate(b *testing.B) {
	var okAt float64
	for i := 0; i < b.N; i++ {
		res, err := cloudskulk.AblationKSMWait(benchOptions(i), []time.Duration{
			10 * time.Millisecond, 100 * time.Millisecond, time.Second, 15 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		okAt = -1
		for j, v := range res.Verdicts {
			if v == cloudskulk.VerdictClean {
				okAt = res.Waits[j].Seconds()
				break
			}
		}
	}
	b.ReportMetric(okAt, "min-wait-s")
}

// BenchmarkAblationProbeSize sweeps the probe-file size (the paper argues
// one page suffices).
func BenchmarkAblationProbeSize(b *testing.B) {
	var all float64
	for i := 0; i < b.N; i++ {
		res, err := cloudskulk.AblationProbeSize(benchOptions(i), []int{1, 10, 100, 400})
		if err != nil {
			b.Fatal(err)
		}
		all = 1
		for _, v := range res.Verdicts {
			if v != cloudskulk.VerdictNested {
				all = 0
			}
		}
	}
	b.ReportMetric(all, "all-sizes-detect")
}

// BenchmarkAblationTimingGap sweeps the dedup timing gap and reports
// whether any verdict was ever *wrong* (0 = fail-safe held).
func BenchmarkAblationTimingGap(b *testing.B) {
	var wrong float64
	for i := 0; i < b.N; i++ {
		res, err := cloudskulk.AblationTimingGap(benchOptions(i), []float64{31, 10, 4, 1})
		if err != nil {
			b.Fatal(err)
		}
		wrong = 0
		for j := range res.GapRatios {
			if res.Clean[j] == cloudskulk.VerdictNested ||
				res.Infected[j] == cloudskulk.VerdictClean {
				wrong++
			}
		}
	}
	b.ReportMetric(wrong, "wrong-verdicts")
}

// BenchmarkAblationMigrationFeatures reports the worst-case (compile
// workload, nested destination) install migration under newer-QEMU
// capabilities vs the 2.9 defaults.
func BenchmarkAblationMigrationFeatures(b *testing.B) {
	var defaults, both float64
	for i := 0; i < b.N; i++ {
		res, err := cloudskulk.AblationMigrationFeatures(benchOptions(i))
		if err != nil {
			b.Fatal(err)
		}
		defaults = res.Seconds[0]
		both = res.Seconds[len(res.Seconds)-1]
	}
	b.ReportMetric(defaults, "qemu2.9-s")
	b.ReportMetric(both, "xbzrle+autoconv-s")
}

// BenchmarkAblationPrePostCopy compares the attack under both migration
// algorithms.
func BenchmarkAblationPrePostCopy(b *testing.B) {
	var pre, post float64
	for i := 0; i < b.N; i++ {
		res, err := cloudskulk.AblationPrePostCopy(benchOptions(i))
		if err != nil {
			b.Fatal(err)
		}
		pre, post = res.PreCopySeconds, res.PostCopySeconds
	}
	b.ReportMetric(pre, "precopy-install-s")
	b.ReportMetric(post, "postcopy-install-s")
}

// BenchmarkFleetMigrationStorm quarantines an 8-host fleet's suspects
// onto its trusted hosts under link contention and reports detection
// coverage plus the storm's worst migration time in simulated seconds.
func BenchmarkFleetMigrationStorm(b *testing.B) {
	var coverage, maxMig float64
	for i := 0; i < b.N; i++ {
		o := benchOptions(i)
		res, err := cloudskulk.FleetMigrationStorm(o, []int{8}, []int{4}, []float64{0.5})
		if err != nil {
			b.Fatal(err)
		}
		row := res.Rows[0]
		coverage, maxMig = row.Coverage, row.MaxMoveSec
	}
	b.ReportMetric(coverage, "coverage")
	b.ReportMetric(maxMig, "max-migration-s")
}

// BenchmarkCloudLoad drives the control-plane load experiment at full
// scale — 10,240 tenants, 1,024,000 ops across 64 cells — and reports
// the headline service figures alongside the wall-clock cost.
func BenchmarkCloudLoad(b *testing.B) {
	var p99ms, rejectPct float64
	for i := 0; i < b.N; i++ {
		o := benchOptions(i)
		res, err := cloudskulk.CloudLoad(o, cloudskulk.DefaultCloudLoadConfig())
		if err != nil {
			b.Fatal(err)
		}
		p99ms = float64(res.P99us) / 1000
		rejectPct = 100 * float64(res.AdmissionRejects) / float64(res.Mutations)
	}
	b.ReportMetric(p99ms, "p99-ms")
	b.ReportMetric(rejectPct, "admission-reject-pct")
}

// BenchmarkSweepWorkers regenerates Fig. 4 (the heaviest sweep: 6 cells x
// Runs full migrations, each with its own testbed) at increasing worker
// counts. On a multi-core machine wall-clock time drops near-linearly
// while the rendered figure stays byte-identical — the parallel runner
// only reschedules cells, it never reseeds them.
func BenchmarkSweepWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := benchOptions(i)
				o.Runs = 3
				o.Workers = workers
				if _, err := cloudskulk.Figure4Migration(o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardScale runs the sharded-cloud megastorm at 8, 128, and
// 1,024 hosts (shard count scales, per-shard size stays fixed) and
// reports ns of wall clock per simulated host. Conservative
// synchronization keeps per-host cost near-flat as the world grows two
// orders of magnitude — the scaling claim BENCH_SCALE.json records.
func BenchmarkShardScale(b *testing.B) {
	for _, shards := range []int{2, 32, 256} {
		hosts := shards * 4
		b.Run(fmt.Sprintf("hosts=%d", hosts), func(b *testing.B) {
			cfg := cloudskulk.MegaStormConfig{
				Shards:             shards,
				HostsPerShard:      4,
				GuestsPerHost:      16,
				GuestMemMB:         16,
				MigrationsPerShard: 2,
				TampersPerShard:    2,
				BurstPages:         8,
			}
			for i := 0; i < b.N; i++ {
				o := benchOptions(i)
				r, err := cloudskulk.MegaStorm(o, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if r.MissedTampers != 0 || r.FalseFlags != 0 {
					b.Fatalf("audit not exact: %+v", r)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*hosts), "ns/host")
			b.ReportMetric(float64(16*hosts), "guests")
		})
	}
}

// BenchmarkSpawnFrom forks guests copy-on-write from golden images of
// increasing size. ns/op staying flat from 64 MB to 1 GB is the O(1)
// golden-boot claim: a fork shares all page state with the template and
// allocates only fixed-size bookkeeping.
func BenchmarkSpawnFrom(b *testing.B) {
	for _, memMB := range []int64{64, 256, 1024} {
		b.Run(fmt.Sprintf("memMB=%d", memMB), func(b *testing.B) {
			src := mem.NewSpace("golden", memMB<<20)
			src.FillRandom(rand.New(rand.NewSource(1)), 0.25)
			tmpl := mem.Freeze("golden", src)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sp := mem.SpawnFrom("fork", tmpl)
				if sp.ContentHash() != tmpl.ContentHash() {
					b.Fatal("fork hash mismatch")
				}
			}
		})
	}
}
