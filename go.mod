module cloudskulk

go 1.22
