package cloudskulk

import (
	"time"

	"cloudskulk/internal/experiments"
	"cloudskulk/internal/runner"
	"cloudskulk/internal/scenario"
)

// SweepProgress is a live progress snapshot delivered to
// ExperimentOptions.OnProgress while a sweep's cells execute: cells
// done/total, throughput, and the estimated time remaining.
type SweepProgress = runner.Progress

// Experiment result types, re-exported so downstream tools can regenerate
// the paper's tables and figures programmatically.
type (
	// Figure2Result is the kernel-compile timing figure.
	Figure2Result = experiments.Figure2Result
	// Figure3Result is the netperf throughput figure.
	Figure3Result = experiments.Figure3Result
	// Figure4Result is the live-migration timing figure.
	Figure4Result = experiments.Figure4Result
	// Table1Result is the VM-escape CVE inventory.
	Table1Result = experiments.Table1Result
	// Table2Result is the lmbench arithmetic table.
	Table2Result = experiments.Table2Result
	// Table3Result is the lmbench process table.
	Table3Result = experiments.Table3Result
	// Table4Result is the lmbench file-op table.
	Table4Result = experiments.Table4Result
	// DetectionResult is one Figs. 5-6 run: verdict plus t0/t1/t2.
	DetectionResult = experiments.DetectionResult
	// MigrationKind distinguishes the Fig. 4 series (L0-L0 vs L0-L1).
	MigrationKind = experiments.MigrationKind
	// BaselineComparisonResult pits the three detectors against
	// attacker variants.
	BaselineComparisonResult = experiments.BaselineComparisonResult
)

// Table1CVE regenerates Table I.
func Table1CVE() Table1Result { return experiments.Table1CVE() }

// Figure2KernelCompile regenerates Fig. 2.
func Figure2KernelCompile(o ExperimentOptions) (Figure2Result, error) {
	return experiments.Figure2KernelCompile(o)
}

// Figure3Netperf regenerates Fig. 3.
func Figure3Netperf(o ExperimentOptions) (Figure3Result, error) {
	return experiments.Figure3Netperf(o)
}

// Figure4Migration regenerates Fig. 4.
func Figure4Migration(o ExperimentOptions) (Figure4Result, error) {
	return experiments.Figure4Migration(o)
}

// Table2Arithmetic regenerates Table II.
func Table2Arithmetic(o ExperimentOptions) Table2Result {
	return experiments.Table2Arithmetic(o)
}

// Table3Processes regenerates Table III.
func Table3Processes(o ExperimentOptions) Table3Result {
	return experiments.Table3Processes(o)
}

// Table4FileOps regenerates Table IV.
func Table4FileOps(o ExperimentOptions) Table4Result {
	return experiments.Table4FileOps(o)
}

// Figure5DetectionClean regenerates Fig. 5 (no nested VM).
func Figure5DetectionClean(o ExperimentOptions) (DetectionResult, error) {
	return experiments.Figure5DetectionClean(o)
}

// Figure6DetectionInfected regenerates Fig. 6 (rootkit installed).
func Figure6DetectionInfected(o ExperimentOptions) (DetectionResult, error) {
	return experiments.Figure6DetectionInfected(o)
}

// BaselineComparison evaluates all three detectors against attacker
// variants (the paper's §VI-E discussion as an experiment).
func BaselineComparison(o ExperimentOptions) (BaselineComparisonResult, error) {
	return experiments.BaselineComparison(o)
}

// ArmsRaceSyncCountermeasure runs the §VI-D attacker-synchronization
// matrix: sync strategies vs probe choices, with overhead accounting.
func ArmsRaceSyncCountermeasure(o ExperimentOptions) (experiments.ArmsRaceResult, error) {
	return experiments.ArmsRaceSyncCountermeasure(o)
}

// ArmsRaceMatrix runs the scenario engine's full coverage matrix:
// generated attacker strategies × the detector roster × every registered
// backend (or just o.Backend when set). The artefact is byte-identical
// for any Workers value.
func ArmsRaceMatrix(o ExperimentOptions) (*scenario.MatrixResult, error) {
	cfg := scenario.MatrixConfig{
		Seed:       o.Seed,
		GuestMemMB: 16,
		Workers:    o.Workers,
		OnProgress: o.OnProgress,
	}
	if o.Backend != "" {
		cfg.Backends = []string{o.Backend}
	}
	return scenario.RunMatrix(cfg)
}

// MultiTenantSurvey runs the dedup-timing detector against every tenant of
// a multi-tenant host where one has been CloudSkulked.
func MultiTenantSurvey(o ExperimentOptions, tenants, infected int) (experiments.SurveyResult, error) {
	return experiments.MultiTenantSurvey(o, tenants, infected)
}

// RemediationDrill plays the defender's full runbook: detect the rootkit,
// destroy the disguised RITM stack, rebuild the tenant, verify clean.
func RemediationDrill(o ExperimentOptions) (experiments.RemediationResult, error) {
	return experiments.RemediationDrill(o)
}

// TimeToDetect measures the watchdog's detection latency under periodic
// scanning: infect mid-flight, measure infection-to-alert.
func TimeToDetect(o ExperimentOptions, scanPeriod time.Duration) (experiments.TimeToDetectResult, error) {
	return experiments.TimeToDetect(o, scanPeriod)
}

// AblationExitMultiplier sweeps the Turtles exit-multiplication factor.
func AblationExitMultiplier(o ExperimentOptions, multipliers []int) experiments.AblationExitMultiplierResult {
	return experiments.AblationExitMultiplier(o, multipliers)
}

// AblationDirtyRate sweeps guest dirty rate against migration time.
func AblationDirtyRate(o ExperimentOptions, rates []float64) (experiments.AblationDirtyRateResult, error) {
	return experiments.AblationDirtyRate(o, rates)
}

// AblationMigrationFeatures measures the worst-case install migration
// under XBZRLE and auto-converge capabilities.
func AblationMigrationFeatures(o ExperimentOptions) (experiments.AblationMigrationFeaturesResult, error) {
	return experiments.AblationMigrationFeatures(o)
}

// AblationPrePostCopy compares install cost under both migration modes.
func AblationPrePostCopy(o ExperimentOptions) (experiments.AblationPrePostCopyResult, error) {
	return experiments.AblationPrePostCopy(o)
}

// AblationTimingGap sweeps the COW/regular write timing gap the detection
// signal rests on.
func AblationTimingGap(o ExperimentOptions, gapRatios []float64) (experiments.AblationTimingGapResult, error) {
	return experiments.AblationTimingGap(o, gapRatios)
}

// AblationProbeSize sweeps the detection probe-file size.
func AblationProbeSize(o ExperimentOptions, sizes []int) (experiments.AblationProbeSizeResult, error) {
	return experiments.AblationProbeSize(o, sizes)
}

// AblationKSMWait sweeps the detector's merge window.
func AblationKSMWait(o ExperimentOptions, waits []time.Duration) (experiments.AblationKSMRateResult, error) {
	return experiments.AblationKSMWait(o, waits)
}

// Cloud control-plane load experiment.
type (
	// CloudLoadConfig sizes the control-plane load run (cells, tenants,
	// ops, quotas, queue bounds); zero fields take the defaults.
	CloudLoadConfig = experiments.CloudLoadConfig
	// CloudLoadResult is the aggregated million-op ledger.
	CloudLoadResult = experiments.CloudLoadResult
)

// DefaultCloudLoadConfig is the headline scale: 10,240 tenants issuing
// 1,024,000 operations against 512 hosts across 64 cells.
func DefaultCloudLoadConfig() CloudLoadConfig { return experiments.DefaultCloudLoadConfig() }

// QuickCloudLoadConfig is a sub-second configuration for smoke runs.
func QuickCloudLoadConfig() CloudLoadConfig { return experiments.QuickCloudLoadConfig() }

// CloudLoad drives the configured tenant population through a control
// plane per cell and aggregates the ledgers: latency percentiles,
// throughput, quota/admission reject rates, and placement quality.
func CloudLoad(o ExperimentOptions, cfg CloudLoadConfig) (*CloudLoadResult, error) {
	return experiments.CloudLoad(o, cfg)
}

// Sharded-cloud scale experiment.
type (
	// MegaStormConfig sizes the sharded grid (shards, hosts, guests,
	// golden-image size, churn volume); zero fields take the defaults.
	MegaStormConfig = experiments.MegaStormConfig
	// MegaStormResult is the scale run's deterministic ledger.
	MegaStormResult = experiments.MegaStormResult
)

// DefaultMegaStormConfig is the headline scale: 102,400 guests on 1,024
// hosts across 64 shards, every guest a copy-on-write fork of a 128 MB
// golden image.
func DefaultMegaStormConfig() MegaStormConfig { return experiments.DefaultMegaStormConfig() }

// QuickMegaStormConfig is a sub-second configuration for smoke runs.
func QuickMegaStormConfig() MegaStormConfig { return experiments.QuickMegaStormConfig() }

// MegaStorm provisions the sharded grid through per-shard control
// planes, runs a churn phase of write bursts, kernel tampering, and
// cross-shard delta migrations under conservative synchronization, then
// audits every guest kernel against the golden image. The artefact is
// byte-identical at any worker count.
func MegaStorm(o ExperimentOptions, cfg MegaStormConfig) (*MegaStormResult, error) {
	return experiments.MegaStorm(o, cfg)
}

// FleetMigrationStorm sweeps fleet size × concurrent migrations ×
// infected fraction: each cell quarantines its suspects onto trusted
// hosts under link contention, then sweeps the whole fleet with the
// dedup detector.
func FleetMigrationStorm(o ExperimentOptions, hostCounts, concurrencies []int, infectedFracs []float64) (*experiments.FleetStormResult, error) {
	return experiments.FleetMigrationStorm(o, hostCounts, concurrencies, infectedFracs)
}
