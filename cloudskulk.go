// Package cloudskulk is a full reproduction of "CloudSkulk: A Nested
// Virtual Machine Based Rootkit and Its Detection" (DSN 2021) as a
// deterministic simulation library.
//
// The package re-exports the project's building blocks behind one import:
//
//   - a simulated QEMU/KVM cloud host (nested virtualization, live
//     migration, KSM memory deduplication, QEMU monitor protocol);
//   - the CloudSkulk rootkit: recon, the four-step nested-VM install, and
//     its passive/active malicious services;
//   - the paper's defence (memory-deduplication write-timing detection)
//     plus the VMCS-scan and VMI-fingerprint baselines it discusses;
//   - an experiment harness reproducing every table and figure of the
//     paper's evaluation.
//
// Quick start:
//
//	cloud, err := cloudskulk.New(1)                 // seeded testbed, 1 GiB victim
//	rk, err := cloud.InstallRootkit(cloudskulk.InstallConfig{})
//	cloud.Host.KSM().Start()
//	det := cloudskulk.NewDedupDetector(cloud.Host)
//	agent := cloudskulk.NewGuestAgent(rk.Victim, 2048)
//	agent.OnLoad = rk.InterceptFilePushes(8192)
//	verdict, evidence, err := det.Run(agent)        // => VerdictNested
//
// Everything runs on a virtual clock: results are exactly reproducible
// for a given seed, regardless of the machine executing the simulation.
package cloudskulk

import (
	"cloudskulk/internal/controlplane"
	"cloudskulk/internal/core"
	"cloudskulk/internal/cpu"
	"cloudskulk/internal/detect"
	"cloudskulk/internal/experiments"
	"cloudskulk/internal/fleet"
	"cloudskulk/internal/hv"
	"cloudskulk/internal/kvm"
	"cloudskulk/internal/loadgen"
	"cloudskulk/internal/mem"
	"cloudskulk/internal/migrate"
	"cloudskulk/internal/qemu"
	"cloudskulk/internal/scenario"
	"cloudskulk/internal/sim"
	"cloudskulk/internal/telemetry"
	"cloudskulk/internal/vnet"
	"cloudskulk/internal/workload"
)

// Testbed building blocks.
type (
	// Cloud is one simulated physical machine with a running victim VM
	// and a live-migration engine — the paper's testbed.
	Cloud = experiments.Cloud
	// Host is the physical machine: OS, network endpoint, KSM daemon,
	// and the L0 hypervisor.
	Host = kvm.Host
	// Hypervisor hosts VMs at one virtualization level and can nest.
	Hypervisor = kvm.Hypervisor
	// VM is one QEMU guest.
	VM = qemu.VM
	// VMConfig is a guest's launch configuration (and recon surface).
	VMConfig = qemu.Config
	// FwdRule is one host-port-to-guest-port forwarding rule.
	FwdRule = qemu.FwdRule
	// Level is a virtualization level (L0 bare metal, L1 guest, L2
	// nested guest).
	Level = cpu.Level
)

// Virtualization levels, in the Turtles notation the paper uses. L3 is
// the scenario engine's deeper-nesting strategy: a guest behind two
// stacked hypervisors.
const (
	L0 = cpu.L0
	L1 = cpu.L1
	L2 = cpu.L2
	L3 = cpu.L3
)

// The attack.
type (
	// InstallConfig parameterizes the CloudSkulk installation; the zero
	// value takes the paper's defaults.
	InstallConfig = core.InstallConfig
	// Rootkit is an installed CloudSkulk instance.
	Rootkit = core.Rootkit
	// InstallReport carries step timings and the migration result.
	InstallReport = core.Report
	// Recon is the attacker's target-discovery toolkit.
	Recon = core.Recon
	// Sniffer is the passive traffic-capture service.
	Sniffer = core.Sniffer
	// ActiveFilter is the active drop/tamper service.
	ActiveFilter = core.ActiveFilter
	// FilterRule matches packets for the active service.
	FilterRule = core.FilterRule
	// VMI is the attacker's introspection of the captured victim.
	VMI = core.VMI
)

// Active-service actions.
const (
	ActionDrop    = core.ActionDrop
	ActionReplace = core.ActionReplace
)

// The defence.
type (
	// DedupDetector runs the paper's memory-deduplication timing
	// protocol from L0.
	DedupDetector = detect.DedupDetector
	// GuestAgent is the in-guest side of the protocol.
	GuestAgent = detect.GuestAgent
	// Verdict is the detector's conclusion.
	Verdict = detect.Verdict
	// Evidence carries the t0/t1/t2 timing probes.
	Evidence = detect.Evidence
	// VMCSScanner is the memory-forensic baseline detector.
	VMCSScanner = detect.VMCSScanner
	// FingerprintDB is the VMI-fingerprint baseline detector.
	FingerprintDB = detect.FingerprintDB
)

// Detection verdicts.
const (
	VerdictClean        = detect.VerdictClean
	VerdictNested       = detect.VerdictNested
	VerdictInconclusive = detect.VerdictInconclusive
)

// The arms race: generated attacker strategies vs. the detector roster.
type (
	// StrategySpec is one fully parameterized attacker strategy,
	// replayable from its (seed, spec) pair and round-trippable through
	// its wire form.
	StrategySpec = scenario.Spec
	// StrategyKind is the strategy archetype (baseline, evade-ksm,
	// shape-dirty, nest-deep).
	StrategyKind = scenario.Kind
	// ChurnScope selects which shared-candidate regions an evasion
	// strategy re-dirties.
	ChurnScope = scenario.Scope
	// ArmsRaceConfig parameterizes a coverage-matrix sweep.
	ArmsRaceConfig = scenario.MatrixConfig
	// ArmsRaceCell is one strategy × detector × backend outcome.
	ArmsRaceCell = scenario.Cell
	// ArmsRaceResult is the full deterministic coverage matrix.
	ArmsRaceResult = scenario.MatrixResult
	// InvariantDetector is the Hello-rootKitty-style kernel-range
	// checksum auditor.
	InvariantDetector = detect.InvariantDetector
	// SkewDetector flags exit-class skew from the host's telemetry.
	SkewDetector = detect.SkewDetector
)

// GenerateStrategies draws n attacker strategies from the seeded strategy
// space; the first four cover every archetype once.
func GenerateStrategies(seed int64, n int) []StrategySpec { return scenario.Generate(seed, n) }

// ParseStrategy reads a strategy from its wire form
// ("kind=evade-ksm churn=80ms scope=shared-all ...").
func ParseStrategy(wire string) (StrategySpec, error) { return scenario.Parse(wire) }

// DetectorRoster lists the scenario engine's detector roster in matrix
// order.
func DetectorRoster() []string { return scenario.RosterNames() }

// NewInvariantDetector arms a checksum auditor over pages [from, from+n)
// of a guest's RAM as L0 sees it.
func NewInvariantDetector(eng *sim.Engine, s *mem.Space, from, n int) *InvariantDetector {
	return detect.NewInvariantDetector(eng, s, from, n)
}

// NewSkewDetector returns an exit-class-skew detector over the given
// telemetry registry.
func NewSkewDetector(reg *TelemetryRegistry) *SkewDetector { return detect.NewSkewDetector(reg) }

// Experiments: the paper's evaluation.
type (
	// ExperimentOptions scales the experiment harness.
	ExperimentOptions = experiments.Options
)

// Workloads and files.
type (
	// File is an in-memory file image (the detection probe file).
	File = mem.File
	// WorkloadProfile is a background guest-activity pattern.
	WorkloadProfile = workload.Profile
	// MigrationMode selects pre-copy or post-copy live migration.
	MigrationMode = migrate.Mode
	// Packet is one unit of simulated network traffic.
	Packet = vnet.Packet
	// Addr is an (endpoint, port) network address.
	Addr = vnet.Addr
	// Tap observes (and may rewrite or drop) packets.
	Tap = vnet.Tap
)

// Migration modes.
const (
	PreCopy  = migrate.PreCopy
	PostCopy = migrate.PostCopy
)

// Testbed options for New.
type (
	// CloudOption configures the testbed New builds.
	CloudOption = experiments.CloudOption
)

// Testbed option constructors.
var (
	// WithGuestMemMB sets the victim VM's memory size in MiB (default
	// 1024, the paper's 1 GiB guest).
	WithGuestMemMB = experiments.WithGuestMemMB
	// WithMonitorPort moves the victim's QEMU monitor off the default
	// 5555.
	WithMonitorPort = experiments.WithMonitorPort
	// WithKSMStarted starts the host's KSM daemon during construction
	// instead of leaving it stopped.
	WithKSMStarted = experiments.WithKSMStarted
	// WithWorkloadProfile attaches a background guest-activity generator
	// to the victim (exposed as Cloud.Background).
	WithWorkloadProfile = experiments.WithWorkloadProfile
	// WithTelemetry wires a metrics registry through the whole testbed
	// (host, KSM, vCPUs, network, migration engine).
	WithTelemetry = experiments.WithTelemetry
	// WithBackend builds the testbed on the named hypervisor backend
	// (cost profile); the empty string selects DefaultBackend and unknown
	// names make New return ErrUnknownBackend.
	WithBackend = experiments.WithBackend
)

// Hypervisor backends: named cost-profile calibrations of the simulated
// substrate. Every experiment and detector runs unchanged on any backend;
// only the constants (exit costs, multipliers, KSM timing, boot time)
// move.
type (
	// Backend is a registered hypervisor cost profile.
	Backend = hv.Backend
	// BackendProfile is the calibration a Backend carries.
	BackendProfile = hv.Profile
)

// DefaultBackend names the paper's testbed calibration (Intel i7-4790
// under KVM), the profile every golden artefact is pinned against.
const DefaultBackend = hv.DefaultName

// ErrUnknownBackend is returned (wrapped, with the registered names
// listed) when an option or flag names a backend nobody registered.
var ErrUnknownBackend = hv.ErrUnknownBackend

// Backends lists the registered backend names, sorted.
func Backends() []string { return hv.Names() }

// LookupBackend resolves a backend name ("" selects DefaultBackend).
func LookupBackend(name string) (Backend, error) { return hv.Lookup(name) }

// RegisterBackend adds a caller-defined cost profile to the registry,
// rejecting profiles that break the simulation's core invariants (free
// exits, an exit multiplier below 1, a KSM COW gap too narrow to ever
// detect, a zero boot time).
func RegisterBackend(b Backend) error { return hv.Register(b) }

// Telemetry: sim-time metrics and structured spans.
type (
	// TelemetryRegistry collects counters, gauges, and histograms from
	// every instrumented layer; exports are deterministic per seed.
	TelemetryRegistry = telemetry.Registry
	// MetricSnapshot is one exported metric (stable-sorted by name).
	MetricSnapshot = telemetry.MetricSnapshot
	// SpanTracer records span-style traces on a simulation's clock.
	SpanTracer = telemetry.SpanTracer
	// Span is one timed operation in a span tree.
	Span = telemetry.Span
)

// NewTelemetryRegistry builds an empty metrics registry; pass it to
// WithTelemetry (testbed), WithFleetTelemetry (fleet), or
// ExperimentOptions.Telemetry (whole evaluation).
func NewTelemetryRegistry() *TelemetryRegistry { return telemetry.NewRegistry() }

// The fleet: many hosts on one fabric.
type (
	// Fleet is a set of simulated hosts sharing one virtual-time engine
	// and one network fabric, with cross-host live migration, placement,
	// and fleet-wide detection sweeps.
	Fleet = fleet.Fleet
	// FleetOption configures NewFleet.
	FleetOption = fleet.Option
	// HostSpec describes one fleet host (name, memory, trust tag).
	HostSpec = fleet.HostSpec
	// PlacementPolicy constrains the fleet scheduler's host choice.
	PlacementPolicy = fleet.Policy
	// GuestInfo is a fleet guest's resolved placement (host plus the VM
	// stack the operator actually reaches through the service port).
	GuestInfo = fleet.GuestInfo
	// MoveReport summarizes one fleet migration: route, attempts,
	// retries, and the underlying migration result.
	MoveReport = fleet.MoveReport
	// SweepVerdict is one guest's outcome in a fleet detection sweep.
	SweepVerdict = fleet.GuestVerdict
	// SweepOptions configures a fleet detection sweep.
	SweepOptions = fleet.SweepOptions
	// LinkSpec is a fabric link's bandwidth/latency/down state.
	LinkSpec = vnet.LinkSpec
)

// Fleet option constructors.
var (
	// WithHosts builds n uniform hosts (h00, h01, ...) with the trailing
	// quarter tagged trusted.
	WithHosts = fleet.WithHosts
	// WithHostSpecs builds exactly the given hosts.
	WithHostSpecs = fleet.WithHostSpecs
	// WithHostLink sets the host<->host fabric link spec.
	WithHostLink = fleet.WithHostLink
	// WithRetry sets the migration retry budget and initial backoff.
	WithRetry = fleet.WithRetry
	// WithFleetTelemetry replaces the fleet's private metrics registry
	// (nil disables instrumentation entirely).
	WithFleetTelemetry = fleet.WithTelemetry
	// WithFleetBackend builds every fleet host on the named backend.
	WithFleetBackend = fleet.WithBackend
	// WithHostBackend overrides the backend for one named host; the host
	// must exist or NewFleet returns ErrUnknownHost.
	WithHostBackend = fleet.WithHostBackend
)

// ErrUnknownHost is returned when a fleet call names a host that does not
// exist (including a WithHostBackend override for an unknown host).
var ErrUnknownHost = fleet.ErrUnknownHost

// The control plane: the tenant-facing management API over a fleet.
type (
	// ControlPlane is the deterministic IaaS management layer: typed
	// tenant requests, per-tenant quotas, and an async job queue on the
	// shared sim engine.
	ControlPlane = controlplane.Plane
	// ControlPlaneConfig tunes the queue machinery (bound, slots,
	// dispatch latency, retry policy).
	ControlPlaneConfig = controlplane.Config
	// TenantQuota bounds one tenant's footprint; zero fields are
	// unlimited.
	TenantQuota = controlplane.Quota
	// APIRequest is one typed management call (deploy, stop, migrate,
	// snapshot, list, usage) with a canonical wire form.
	APIRequest = controlplane.Request
	// ControlJob is one asynchronous mutation moving through the queue.
	ControlJob = controlplane.Job
	// ControlJobState is a job's lifecycle position.
	ControlJobState = controlplane.JobState
	// LoadOptions shapes one seeded tenant-traffic run.
	LoadOptions = loadgen.Options
	// LoadStats is a load run's deterministic outcome ledger.
	LoadStats = loadgen.Stats
	// LoadMix weighs the generated op types.
	LoadMix = loadgen.Mix
)

// Control-plane job lifecycle states.
const (
	JobQueued    = controlplane.JobQueued
	JobRunning   = controlplane.JobRunning
	JobSucceeded = controlplane.JobSucceeded
	JobFailed    = controlplane.JobFailed
	JobCancelled = controlplane.JobCancelled
)

// NewControlPlane builds a management plane over a fleet; the plane
// shares the fleet's engine, telemetry registry, and span tracer.
func NewControlPlane(f *Fleet, cfg ControlPlaneConfig) *ControlPlane {
	return controlplane.New(f, cfg)
}

// ParseAPIRequest parses the canonical wire form ("deploy t0 web 64",
// "list t0", ...) into a validated request.
func ParseAPIRequest(line string) (APIRequest, error) {
	return controlplane.ParseRequest(line)
}

// RunLoad replays seeded tenant traffic against a control plane and
// returns the ledger.
func RunLoad(p *ControlPlane, o LoadOptions) (LoadStats, error) {
	return loadgen.Run(p, o)
}

// NewFleet builds a seeded multi-host fleet: N hosts on a shared fabric
// with per-pair links, a common live-migration engine, and a deterministic
// placement scheduler. The zero-option call builds four hosts (one
// trusted) on 1 Gbit-class links.
func NewFleet(seed int64, opts ...FleetOption) (*Fleet, error) {
	return fleet.New(seed, opts...)
}

// New builds a seeded testbed: one host with a running victim VM
// ("guest0", SSH forwarded on host port 2222, QEMU monitor on 5555), a
// live-migration engine, and a KSM daemon (created stopped unless
// WithKSMStarted). The zero-option call reproduces the paper's testbed
// with a 1 GiB victim.
func New(seed int64, opts ...CloudOption) (*Cloud, error) {
	return experiments.NewCloud(seed, opts...)
}

// DefaultInstallConfig returns the paper's attack parameters.
func DefaultInstallConfig() InstallConfig {
	return core.DefaultInstallConfig()
}

// NewDedupDetector returns the paper's detector with its default
// parameters (100-page probe, 15 s merge window).
func NewDedupDetector(host *Host) *DedupDetector {
	return detect.NewDedupDetector(host)
}

// NewGuestAgent returns the in-guest agent placing the probe file at the
// given page offset.
func NewGuestAgent(vm *VM, atPage int) *GuestAgent {
	return detect.NewGuestAgent(vm, atPage)
}

// NewSniffer returns an empty passive-capture tap.
func NewSniffer() *Sniffer { return core.NewSniffer() }

// NewActiveFilter returns an active drop/tamper tap with the given rules.
func NewActiveFilter(rules ...FilterRule) *ActiveFilter {
	return core.NewActiveFilter(rules...)
}

// NewFingerprintDB returns an empty VMI-fingerprint baseline database.
func NewFingerprintDB() *FingerprintDB { return detect.NewFingerprintDB() }

// DefaultExperimentOptions reproduces the paper's evaluation scale
// (1 GiB guests, 5 runs per cell).
func DefaultExperimentOptions() ExperimentOptions {
	return experiments.DefaultOptions()
}

// QuickExperimentOptions returns a scaled-down configuration suitable for
// fast smoke runs.
func QuickExperimentOptions() ExperimentOptions {
	return experiments.TestOptions()
}

// GenerateFile builds an in-memory file image of n pages with globally
// unique contents, drawing its nonce from the cloud's seeded randomness —
// the probe files and guest documents of the examples and experiments.
func GenerateFile(cloud *Cloud, name string, pages int) *File {
	return mem.GenerateFile(cloud.Eng.RNG(), name, pages)
}
