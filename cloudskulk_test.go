package cloudskulk_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"cloudskulk"
)

// TestPublicAPIQuickstart exercises the README's quick-start flow through
// the public facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	cloud, err := cloudskulk.New(1, cloudskulk.WithGuestMemMB(32))
	if err != nil {
		t.Fatal(err)
	}
	rk, err := cloud.InstallRootkit(cloudskulk.InstallConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rk.Victim.Level() != cloudskulk.L2 {
		t.Fatalf("victim level = %v", rk.Victim.Level())
	}
	cloud.Host.KSM().Start()
	det := cloudskulk.NewDedupDetector(cloud.Host)
	det.Pages = 50
	agent := cloudskulk.NewGuestAgent(rk.Victim, 2048)
	agent.OnLoad = rk.InterceptFilePushes(8192)
	verdict, ev, err := det.Run(agent)
	if err != nil {
		t.Fatal(err)
	}
	if verdict != cloudskulk.VerdictNested {
		t.Fatalf("verdict = %v", verdict)
	}
	if ev.T2.Mean() < ev.T0.Mean() {
		t.Fatal("evidence shape wrong")
	}
}

func TestPublicAPICleanDetection(t *testing.T) {
	cloud, err := cloudskulk.New(2, cloudskulk.WithGuestMemMB(32))
	if err != nil {
		t.Fatal(err)
	}
	cloud.Host.KSM().Start()
	det := cloudskulk.NewDedupDetector(cloud.Host)
	det.Pages = 50
	verdict, _, err := det.Run(cloudskulk.NewGuestAgent(cloud.Victim, 2048))
	if err != nil {
		t.Fatal(err)
	}
	if verdict != cloudskulk.VerdictClean {
		t.Fatalf("verdict = %v", verdict)
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	o := cloudskulk.QuickExperimentOptions()
	if out := cloudskulk.Table1CVE().Render(); !strings.Contains(out, "TABLE I") {
		t.Fatal("table1")
	}
	if _, err := cloudskulk.Figure2KernelCompile(o); err != nil {
		t.Fatal(err)
	}
	if _, err := cloudskulk.Figure3Netperf(o); err != nil {
		t.Fatal(err)
	}
	t2 := cloudskulk.Table2Arithmetic(o)
	if len(t2.Ops) != 10 {
		t.Fatal("table2")
	}
	if got := cloudskulk.Table3Processes(o); len(got.Ops) != 8 {
		t.Fatal("table3")
	}
	if got := cloudskulk.Table4FileOps(o); len(got.Labels) != 8 {
		t.Fatal("table4")
	}
}

func TestPublicAPIExperimentExtensions(t *testing.T) {
	o := cloudskulk.QuickExperimentOptions()
	if res, err := cloudskulk.Figure4Migration(o); err != nil || len(res.Cells) != 6 {
		t.Fatalf("fig4: %v", err)
	}
	if res, err := cloudskulk.Figure5DetectionClean(o); err != nil ||
		res.Verdict != cloudskulk.VerdictClean {
		t.Fatalf("fig5: %v %v", res.Verdict, err)
	}
	if res, err := cloudskulk.Figure6DetectionInfected(o); err != nil ||
		res.Verdict != cloudskulk.VerdictNested {
		t.Fatalf("fig6: %v %v", res.Verdict, err)
	}
	if res, err := cloudskulk.MultiTenantSurvey(o, 2, 0); err != nil || !res.Correct() {
		t.Fatalf("survey: %v", err)
	}
	if res, err := cloudskulk.RemediationDrill(o); err != nil ||
		res.PostVerdict != cloudskulk.VerdictClean {
		t.Fatalf("remediation: %v", err)
	}
	if res, err := cloudskulk.BaselineComparison(o); err != nil || len(res.Rows) != 3 {
		t.Fatalf("baselines: %v", err)
	}
	if res, err := cloudskulk.ArmsRaceSyncCountermeasure(o); err != nil || len(res.Rows) != 6 {
		t.Fatalf("armsrace: %v", err)
	}
	if res, err := cloudskulk.AblationTimingGap(o, []float64{31}); err != nil ||
		len(res.GapRatios) != 1 {
		t.Fatalf("timing gap: %v", err)
	}
	if res, err := cloudskulk.AblationMigrationFeatures(o); err != nil ||
		len(res.Variants) != 4 {
		t.Fatalf("features: %v", err)
	}
	if res, err := cloudskulk.AblationPrePostCopy(o); err != nil ||
		res.PreCopySeconds <= 0 {
		t.Fatalf("prepost: %v", err)
	}
	if res, err := cloudskulk.AblationDirtyRate(o, []float64{100, 4000}); err != nil ||
		len(res.Seconds) != 2 {
		t.Fatalf("dirty rate: %v", err)
	}
	if res, err := cloudskulk.AblationProbeSize(o, []int{5}); err != nil ||
		len(res.Verdicts) != 1 {
		t.Fatalf("probe size: %v", err)
	}
	if res, err := cloudskulk.AblationKSMWait(o, []time.Duration{10 * time.Second}); err != nil ||
		len(res.Verdicts) != 1 {
		t.Fatalf("ksm wait: %v", err)
	}
	if res, err := cloudskulk.TimeToDetect(o, 5*time.Minute); err != nil ||
		res.TimeToDetect <= 0 {
		t.Fatalf("ttd: %v", err)
	}
	if res := cloudskulk.AblationExitMultiplier(o, []int{18}); len(res.PipeL2Us) != 1 {
		t.Fatal("exit multiplier")
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	cloud, err := cloudskulk.New(3, cloudskulk.WithGuestMemMB(32))
	if err != nil {
		t.Fatal(err)
	}
	db := cloudskulk.NewFingerprintDB()
	db.Baseline(cloud.Victim)
	if ok, err := db.Check(cloud.Victim); err != nil || !ok {
		t.Fatalf("fingerprint self-check %v %v", ok, err)
	}
	if got := (cloudskulk.VMCSScanner{Host: cloud.Host}).Scan(); len(got) != 0 {
		t.Fatalf("clean host VMCS findings: %v", got)
	}
}

func TestPublicAPIServices(t *testing.T) {
	cloud, err := cloudskulk.New(4, cloudskulk.WithGuestMemMB(32))
	if err != nil {
		t.Fatal(err)
	}
	rk, err := cloud.InstallRootkit(cloudskulk.InstallConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sniffer := cloudskulk.NewSniffer()
	if err := rk.AttachTap(sniffer); err != nil {
		t.Fatal(err)
	}
	filter := cloudskulk.NewActiveFilter(cloudskulk.FilterRule{
		Port:   22,
		Match:  []byte("drop-me"),
		Action: cloudskulk.ActionDrop,
	})
	if err := rk.AttachTap(filter); err != nil {
		t.Fatal(err)
	}
}

// TestEveryBackendDetectsTheRootkit is the cross-backend smoke test: the
// KSM write-timing detector must flag the nested guest on every
// registered backend, not just the paper's testbed calibration — the
// attack and the defence are mechanics, the backend only moves the
// constants.
func TestEveryBackendDetectsTheRootkit(t *testing.T) {
	names := cloudskulk.Backends()
	if len(names) < 3 {
		t.Fatalf("want >= 3 registered backends, got %v", names)
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			cloud, err := cloudskulk.New(11,
				cloudskulk.WithGuestMemMB(32), cloudskulk.WithBackend(name))
			if err != nil {
				t.Fatal(err)
			}
			if got := cloud.Host.Backend().Name; got != name {
				t.Fatalf("host built on backend %q, want %q", got, name)
			}
			rk, err := cloud.InstallRootkit(cloudskulk.InstallConfig{})
			if err != nil {
				t.Fatal(err)
			}
			cloud.Host.KSM().Start()
			det := cloudskulk.NewDedupDetector(cloud.Host)
			det.Pages = 50
			agent := cloudskulk.NewGuestAgent(rk.Victim, 2048)
			agent.OnLoad = rk.InterceptFilePushes(8192)
			verdict, _, err := det.Run(agent)
			if err != nil {
				t.Fatal(err)
			}
			if verdict != cloudskulk.VerdictNested {
				t.Fatalf("backend %s: verdict = %v, want nested", name, verdict)
			}
		})
	}
}

// TestPublicBackendAPI exercises the backend surface of the facade:
// lookup, the typed unknown-name error from both the cloud and fleet
// constructors, and per-host fleet overrides.
func TestPublicBackendAPI(t *testing.T) {
	b, err := cloudskulk.LookupBackend("")
	if err != nil || b.Name != cloudskulk.DefaultBackend {
		t.Fatalf("LookupBackend(\"\") = %v, %v", b.Name, err)
	}
	if _, err := cloudskulk.New(1, cloudskulk.WithBackend("xen-4.1")); !errors.Is(err, cloudskulk.ErrUnknownBackend) {
		t.Fatalf("New with unknown backend: %v", err)
	}
	if _, err := cloudskulk.NewFleet(1, cloudskulk.WithFleetBackend("xen-4.1")); !errors.Is(err, cloudskulk.ErrUnknownBackend) {
		t.Fatalf("NewFleet with unknown backend: %v", err)
	}
	if _, err := cloudskulk.NewFleet(1, cloudskulk.WithHosts(2),
		cloudskulk.WithHostBackend("h99", "hvf-m2")); !errors.Is(err, cloudskulk.ErrUnknownHost) {
		t.Fatalf("WithHostBackend on unknown host: %v", err)
	}
	fl, err := cloudskulk.NewFleet(1, cloudskulk.WithHosts(2),
		cloudskulk.WithHostBackend("h01", "hvf-m2"))
	if err != nil {
		t.Fatal(err)
	}
	h00, _ := fl.Host("h00")
	h01, _ := fl.Host("h01")
	if h00.Backend().Name != cloudskulk.DefaultBackend || h01.Backend().Name != "hvf-m2" {
		t.Fatalf("per-host backends = %q/%q", h00.Backend().Name, h01.Backend().Name)
	}
}

// TestPublicTelemetryAPI exercises the telemetry facade: a registry built
// here flows through a testbed via WithTelemetry and through a fleet via
// WithFleetTelemetry, and both export paths produce sorted, non-empty
// output.
func TestPublicTelemetryAPI(t *testing.T) {
	reg := cloudskulk.NewTelemetryRegistry()
	if _, err := cloudskulk.New(1, cloudskulk.WithGuestMemMB(32),
		cloudskulk.WithTelemetry(reg)); err != nil {
		t.Fatal(err)
	}
	fl, err := cloudskulk.NewFleet(1, cloudskulk.WithHosts(2),
		cloudskulk.WithFleetTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.StartGuest("h00", "web", 32); err != nil {
		t.Fatal(err)
	}
	text := reg.PromText()
	for _, want := range []string{"kvm_vms_launched_total", "fleet_placements_total 1"} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in export:\n%s", want, text)
		}
	}
	var b strings.Builder
	if err := reg.WriteJSONLines(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"type":"counter"`) {
		t.Fatalf("JSON-lines export empty:\n%s", b.String())
	}
}
